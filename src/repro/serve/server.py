"""The always-on scheduler daemon behind ``python -m repro serve``.

A :class:`ServeServer` owns four kinds of threads:

* an **accept loop** on a Unix/TCP listener, spawning one handler
  thread per client connection (NDJSON request/response, see
  :mod:`repro.serve.protocol`);
* a **worker pool** that pops :class:`~repro.serve.jobs.Job` objects
  off the bounded :class:`~repro.serve.jobs.PendingQueue` and executes
  them through the one ``run(scenario)`` entry point — the daemon adds
  queueing, lifecycle, and cancellation *around* the Scenario
  machinery, never a second execution path, which is what makes the
  determinism contract (daemon result byte-identical to a direct run at
  the same seed) hold by construction;
* a **telemetry ticker** recording periodic snapshots into a ring; and
* transient **shutdown** threads (signal handlers and the ``shutdown``
  verb both funnel into the idempotent :meth:`ServeServer.shutdown`).

Cancellation: queued jobs are pulled straight out of the pending queue;
dispatched/running jobs get ``cancel_requested`` set, which the worker
checks before starting and the simulation engine polls every 1024
events via the thread-local abort hook
(:func:`repro.sim.engine.set_abort_check`) — the same early-exit shape
as the client-deregistration drain, applied to the whole run.

Graceful shutdown (SIGINT/SIGTERM or the ``shutdown`` verb): admission
closes, queued jobs are canceled, running jobs drain (or are aborted in
``mode="now"``), the JSON job history is persisted, and the process
exits 0.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.experiments.registry import make_scenario, scenario_catalog
from repro.experiments.scenario import Scenario, run as run_scenario
from repro.sim.engine import RunAborted, set_abort_check

from .jobs import (
    CANCELED,
    COMPLETED,
    DISPATCHED,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    PendingQueue,
    QueueFull,
)
from .protocol import (
    DEFAULT_ADDRESS,
    LineReader,
    ProtocolError,
    create_listener,
    decode_request,
    encode,
    error_response,
    ok_response,
)

__all__ = ["ServeConfig", "ServeServer"]

log = logging.getLogger("repro.serve")


@dataclass
class ServeConfig:
    """Daemon knobs (all surfaced as ``repro serve`` flags).

    ``pace`` throttles execution toward wall-clock time: with
    ``pace=N``, each job occupies its worker for at least
    ``sim_time / N`` wall seconds (N simulated seconds per wall
    second); 0 runs the simulator flat out.  ``workers=0`` is an
    admission-only daemon — jobs queue but never dispatch — which is
    how the queue/cancel/reject paths are tested deterministically.
    """

    address: str = DEFAULT_ADDRESS
    workers: int = 2
    max_pending: int = 16
    pace: float = 0.0
    history_path: Optional[str] = None
    telemetry_interval: float = 1.0
    drain_timeout: Optional[float] = None

    def __post_init__(self):
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.pace < 0:
            raise ValueError("pace must be >= 0")


class ServeServer:
    """One daemon instance.  ``start()`` binds and spins up threads;
    ``serve_forever()`` additionally installs signal handlers and
    blocks; ``shutdown()`` drains and stops (idempotent, thread-safe).
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.address: Optional[str] = None
        self._listener = None
        self._queue = PendingQueue(self.config.max_pending)
        self._jobs: Dict[str, Job] = {}
        self._history: List[str] = []
        self._running_ids: set = set()
        self._counters = {key: 0 for key in (
            "submitted", "rejected", "dispatched",
            "completed", "failed", "canceled")}
        self._next_job = 0
        self._telemetry_seq = 0
        self._telemetry_ring: List[Dict[str, Any]] = []
        self._connections: set = set()
        self._lock = threading.RLock()
        self._shutting_down = False
        self._workers_stop = threading.Event()
        self._stopped = threading.Event()
        self._threads: List[threading.Thread] = []
        self._started_monotonic = 0.0
        self._started_unix = 0.0

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> str:
        """Bind the listener and start all threads; returns the
        resolved address (TCP port 0 becomes the real ephemeral port)."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._listener, self.address = create_listener(self.config.address)
        self._listener.settimeout(0.2)
        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()
        accept = threading.Thread(target=self._accept_loop,
                                  name="serve-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        for index in range(self.config.workers):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"serve-worker-{index}",
                                      daemon=True)
            worker.start()
            self._threads.append(worker)
        if self.config.telemetry_interval > 0:
            ticker = threading.Thread(target=self._telemetry_loop,
                                      name="serve-telemetry", daemon=True)
            ticker.start()
            self._threads.append(ticker)
        log.info("serving on %s (%d workers, max_pending=%d)",
                 self.address, self.config.workers, self.config.max_pending)
        return self.address

    def serve_forever(self) -> int:
        """CLI entry: start (if needed), trap SIGINT/SIGTERM into a
        graceful drain, and block until shutdown completes.  Returns 0
        on a clean drain."""
        if self._listener is None:
            self.start()
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                signal.signal(signum, self._on_signal)
        except ValueError:  # not the main thread (tests) — skip handlers
            pass
        self._stopped.wait()
        return 0

    def _on_signal(self, signum, frame) -> None:
        log.info("signal %s: draining and shutting down", signum)
        threading.Thread(target=self.shutdown, name="serve-shutdown",
                         daemon=True).start()

    def shutdown(self, mode: str = "drain") -> None:
        """Stop admission, cancel queued jobs, drain (or abort) running
        jobs, persist history, release the socket.  Safe to call from
        any thread, any number of times."""
        with self._lock:
            if self._shutting_down:
                self._stopped.wait()
                return
            self._shutting_down = True
        clock = self._clock()
        for job in self._queue.drain():
            if job.try_transition(CANCELED, clock=clock,
                                  error="daemon shutdown"):
                self._finalize(job)
        if mode == "now":
            with self._lock:
                for job_id in list(self._running_ids):
                    self._jobs[job_id].cancel_requested = True
        self._workers_stop.set()
        deadline = None if self.config.drain_timeout is None \
            else time.monotonic() + self.config.drain_timeout
        for thread in self._threads:
            if not thread.name.startswith("serve-worker"):
                continue
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            thread.join(remaining)
            if thread.is_alive():
                # Drain timed out: abort whatever is still running and
                # collect the worker.
                log.warning("drain timeout: aborting running jobs")
                with self._lock:
                    for job_id in list(self._running_ids):
                        self._jobs[job_id].cancel_requested = True
                thread.join()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        self._write_history()
        log.info("shutdown complete: %s", self._counters)
        self._stopped.set()

    def _clock(self) -> float:
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # Accept loop and connection handling

    def _accept_loop(self) -> None:
        while not self._shutting_down:
            try:
                conn, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            conn.settimeout(None)
            with self._lock:
                self._connections.add(conn)
            threading.Thread(target=self._handle_connection, args=(conn,),
                             name="serve-conn", daemon=True).start()

    def _handle_connection(self, conn) -> None:
        reader = LineReader(conn)
        try:
            while True:
                try:
                    line = reader.readline()
                except ProtocolError as exc:  # oversized input
                    self._send(conn, error_response(exc.code, exc.message))
                    break
                if line is None:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_request(line)
                    self._dispatch(request, conn)
                except ProtocolError as exc:
                    self._send(conn, error_response(exc.code, exc.message))
                except Exception as exc:  # noqa: BLE001 — daemon must survive
                    log.exception("handler error")
                    self._send(conn, error_response(
                        "internal_error", f"{type(exc).__name__}: {exc}"))
        except (ConnectionError, BrokenPipeError, OSError):
            log.debug("client disconnected mid-request")
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _send(self, conn, payload: Dict[str, Any]) -> None:
        conn.sendall(encode(payload))

    def _dispatch(self, request: Dict[str, Any], conn) -> None:
        verb = request["verb"]
        if verb == "telemetry":
            self._handle_telemetry(request, conn)
            return
        handler = getattr(self, f"_verb_{verb}")
        payload = handler(request)
        self._send(conn, ok_response(verb, **payload))
        if verb == "shutdown":
            threading.Thread(target=self.shutdown,
                             args=(payload["mode"],),
                             name="serve-shutdown", daemon=True).start()

    # ------------------------------------------------------------------
    # Verbs

    def _verb_ping(self, request) -> Dict[str, Any]:
        return {"address": self.address, "uptime_s": round(self._clock(), 3)}

    def _verb_scenarios(self, request) -> Dict[str, Any]:
        return {"scenarios": scenario_catalog()}

    def _verb_submit(self, request) -> Dict[str, Any]:
        scenario, spec = _build_scenario(request)
        priority = request.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ProtocolError("bad_request", "priority must be an integer")
        with self._lock:
            if self._shutting_down:
                raise ProtocolError("shutting_down",
                                    "daemon is shutting down; not accepting "
                                    "new jobs")
            self._next_job += 1
            job_id = f"job-{self._next_job:04d}"
            job = Job(job_id, scenario, spec, priority=priority,
                      clock=self._clock())
            self._jobs[job_id] = job
            try:
                self._queue.push(job)
            except QueueFull as exc:
                del self._jobs[job_id]
                self._next_job -= 1
                self._counters["rejected"] += 1
                raise ProtocolError("queue_full", str(exc)) from exc
            self._counters["submitted"] += 1
        return {"job": job_id, "state": QUEUED, "queue_depth": len(self._queue)}

    def _verb_status(self, request) -> Dict[str, Any]:
        job_id = request.get("job")
        if job_id is None:
            with self._lock:
                active = [job.describe() for job in self._jobs.values()
                          if not job.terminal]
            active.sort(key=lambda record: record["id"])
            return {"daemon": self._snapshot(), "jobs": active}
        return {"job": self._get_job(job_id).describe()}

    def _verb_result(self, request) -> Dict[str, Any]:
        job = self._get_job(request.get("job"))
        if job.state == COMPLETED:
            return {"job": job.job_id, "state": job.state,
                    "result_json": job.result_json}
        if job.terminal:
            return {"job": job.job_id, "state": job.state,
                    "error": job.error, "result_json": None}
        raise ProtocolError(
            "not_ready", f"job {job.job_id} is {job.state}; no result yet")

    def _verb_cancel(self, request) -> Dict[str, Any]:
        job = self._get_job(request.get("job"))
        clock = self._clock()
        if job.state == QUEUED:
            removed = self._queue.remove(job.job_id)
            if removed is not None and removed.try_transition(
                    CANCELED, clock=clock, error="canceled by client"):
                self._finalize(removed)
                return {"job": job.job_id, "state": CANCELED,
                        "canceled": True}
        if job.terminal:
            return {"job": job.job_id, "state": job.state, "canceled": False}
        # Dispatched or running (or queued-but-popped): cooperative
        # cancel — the worker and the engine abort hook pick it up.
        job.cancel_requested = True
        return {"job": job.job_id, "state": job.state, "canceled": False,
                "cancel_requested": True}

    def _verb_history(self, request) -> Dict[str, Any]:
        limit = request.get("limit", 50)
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise ProtocolError("bad_request",
                                "limit must be a positive integer")
        with self._lock:
            job_ids = self._history[-limit:]
            records = [self._jobs[job_id].describe() for job_id in job_ids]
        return {"jobs": records, "total": len(self._history)}

    def _verb_shutdown(self, request) -> Dict[str, Any]:
        mode = request.get("mode", "drain")
        if mode not in ("drain", "now"):
            raise ProtocolError("bad_request",
                                "shutdown mode must be 'drain' or 'now'")
        return {"mode": mode, "stopping": True}

    def _handle_telemetry(self, request, conn) -> None:
        follow = request.get("follow", 1)
        if not isinstance(follow, int) or isinstance(follow, bool) \
                or not 1 <= follow <= 10000:
            raise ProtocolError("bad_request",
                                "follow must be an integer in [1, 10000]")
        interval = request.get("interval", self.config.telemetry_interval
                               or 1.0)
        try:
            interval = max(0.01, float(interval))
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad_request",
                                "interval must be a number") from exc
        include_ring = bool(request.get("ring", False))
        for index in range(follow):
            payload = {"snapshot": self._snapshot()}
            if include_ring:
                with self._lock:
                    payload["ring"] = list(self._telemetry_ring)
            self._send(conn, ok_response("telemetry", **payload))
            if index + 1 < follow:
                if self._stopped.wait(interval):
                    return

    def _get_job(self, job_id) -> Job:
        if not isinstance(job_id, str):
            raise ProtocolError("bad_request", "request needs a 'job' id")
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError("unknown_job", f"no such job {job_id!r}")
        return job

    # ------------------------------------------------------------------
    # Telemetry

    def _snapshot(self) -> Dict[str, Any]:
        with self._lock:
            states = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            self._telemetry_seq += 1
            return {
                "seq": self._telemetry_seq,
                "uptime_s": round(self._clock(), 3),
                "address": self.address,
                "admission": "closed" if self._shutting_down else "open",
                "queue_depth": len(self._queue),
                "max_pending": self._queue.max_pending,
                "workers": self.config.workers,
                "running": sorted(self._running_ids),
                "jobs": states,
                "counters": dict(self._counters),
            }

    def _telemetry_loop(self) -> None:
        while not self._stopped.wait(self.config.telemetry_interval):
            snapshot = self._snapshot()
            with self._lock:
                self._telemetry_ring.append(snapshot)
                del self._telemetry_ring[:-64]

    # ------------------------------------------------------------------
    # Workers

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.pop(timeout=0.2)
            if job is None:
                if self._workers_stop.is_set():
                    return
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        clock = self._clock()
        if job.cancel_requested \
                or not job.try_transition(DISPATCHED, clock=clock):
            job.try_transition(CANCELED, clock=clock,
                               error="canceled before dispatch")
            self._finalize(job)
            return
        with self._lock:
            self._counters["dispatched"] += 1
            self._running_ids.add(job.job_id)
        job.try_transition(RUNNING, clock=self._clock())
        started = time.monotonic()
        previous = set_abort_check(lambda: job.cancel_requested)
        try:
            outcome = run_scenario(job.scenario)
        except RunAborted:
            job.try_transition(CANCELED, clock=self._clock(),
                               error="canceled while running")
        except Exception as exc:  # noqa: BLE001 — job isolation contract
            job.try_transition(FAILED, clock=self._clock(),
                               error=f"{type(exc).__name__}: {exc}")
        else:
            job.result_json = outcome.to_json()
            job.events_processed = outcome.events_processed
            job.sim_time = outcome.sim_time
            if self._pace(outcome.sim_time, started, job):
                job.try_transition(COMPLETED, clock=self._clock())
            else:  # canceled mid-pacing: the result is discarded
                job.result_json = None
                job.try_transition(CANCELED, clock=self._clock(),
                                   error="canceled while running (paced)")
        finally:
            set_abort_check(previous)
            self._finalize(job)

    def _pace(self, sim_time: float, started: float, job: Job) -> bool:
        """Wall-clock pacing: hold the worker until ``sim_time /
        config.pace`` wall seconds have elapsed.  Returns False if the
        job was canceled while pacing."""
        if self.config.pace <= 0:
            return True
        deadline = started + sim_time / self.config.pace
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return True
            if job.cancel_requested:
                return False
            time.sleep(min(remaining, 0.05))

    def _finalize(self, job: Job) -> None:
        with self._lock:
            self._running_ids.discard(job.job_id)
            if job.terminal and job.job_id not in self._history:
                self._history.append(job.job_id)
                self._counters[job.state.lower()] += 1

    # ------------------------------------------------------------------
    # History persistence

    def _write_history(self) -> None:
        if not self.config.history_path:
            return
        with self._lock:
            payload = {
                "daemon": {
                    "address": self.address,
                    "started_unix": self._started_unix,
                    "workers": self.config.workers,
                    "max_pending": self.config.max_pending,
                    "pace": self.config.pace,
                },
                "counters": dict(self._counters),
                "jobs": [self._jobs[job_id].describe()
                         for job_id in self._history],
            }
        with open(self.config.history_path, "w") as fh:
            json.dump(payload, fh, sort_keys=True, separators=(",", ":"),
                      default=float)
        log.info("wrote job history to %s (%d jobs)",
                 self.config.history_path, len(payload["jobs"]))


# ---------------------------------------------------------------------------
# Submission -> Scenario

def _build_scenario(request: Dict[str, Any]):
    """Build the Scenario a submit request names, or raise a structured
    ``bad_scenario``/``bad_request`` error.

    Two submission shapes: ``{"name": <registry name>, "seed",
    "duration", "overrides"}`` goes through ``make_scenario`` (the same
    catalog the CLI/sweep/bench use), and ``{"scenario": {"kind",
    "params"}}`` builds an inline params-family Scenario.  Inline
    ``kind="experiment"`` is rejected — ExperimentConfig is not
    JSON-expressible; submit a registry name with overrides instead.
    """
    seed = request.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError("bad_request", "seed must be an integer")
    duration = request.get("duration")
    if duration is not None:
        try:
            duration = float(duration)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad_request",
                                "duration must be a number") from exc
    name = request.get("name")
    inline = request.get("scenario")
    if name is not None:
        if not isinstance(name, str):
            raise ProtocolError("bad_request", "name must be a string")
        overrides = request.get("overrides") or {}
        if not isinstance(overrides, dict) \
                or not all(isinstance(k, str) for k in overrides):
            raise ProtocolError("bad_request",
                                "overrides must be an object with string "
                                "keys")
        try:
            scenario = make_scenario(name, seed=seed, duration=duration,
                                     **overrides)
        except Exception as exc:  # bad name or bad override values
            raise ProtocolError("bad_scenario", str(exc)) from exc
        spec = {"name": name, "seed": seed, "duration": duration,
                "overrides": overrides}
        return scenario, spec
    if inline is not None:
        if not isinstance(inline, dict):
            raise ProtocolError("bad_request",
                                "scenario must be an object with a 'kind'")
        kind = inline.get("kind")
        if kind == "experiment":
            raise ProtocolError(
                "bad_scenario",
                "inline experiment configs are not supported; submit a "
                "registry scenario name (see the 'scenarios' verb)")
        params = dict(inline.get("params") or {})
        params["seed"] = seed
        if duration is not None:
            params["duration"] = duration
        try:
            scenario = Scenario(kind=kind, name=inline.get("name") or "",
                                params=params)
        except Exception as exc:
            raise ProtocolError("bad_scenario", str(exc)) from exc
        spec = {"kind": kind, "params": params}
        return scenario, spec
    raise ProtocolError("bad_request",
                        "submit needs a registry 'name' or an inline "
                        "'scenario' object")
