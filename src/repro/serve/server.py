"""The always-on scheduler daemon behind ``python -m repro serve``.

A :class:`ServeServer` owns five kinds of threads:

* an **accept loop** on a Unix/TCP listener, spawning one handler
  thread per client connection (NDJSON request/response, see
  :mod:`repro.serve.protocol`);
* a **worker pool** that pops :class:`~repro.serve.jobs.Job` objects
  off the bounded :class:`~repro.serve.jobs.PendingQueue` and executes
  them through the one ``run(scenario)`` entry point — the daemon adds
  queueing, lifecycle, and cancellation *around* the Scenario
  machinery, never a second execution path, which is what makes the
  determinism contract (daemon result byte-identical to a direct run at
  the same seed) hold by construction;
* a **watchdog** (:mod:`repro.serve.watchdog`) that detects hung
  running jobs via the abort-hook heartbeat and requeues them with
  bounded retries + exponential backoff;
* a **telemetry ticker** recording periodic snapshots into a ring; and
* transient **shutdown** threads (signal handlers and the ``shutdown``
  verb both funnel into the idempotent :meth:`ServeServer.shutdown`).

Durability (:mod:`repro.serve.journal`, DESIGN.md §6.8): with
``journal_path`` set, every submit is journaled *before* it is
acknowledged and every transition/result before it is observable, so a
crash — including ``kill -9`` — loses nothing.  On startup the daemon
replays the journal: completed results come back byte-for-byte, queued
jobs re-enter the pending queue in priority order, and jobs caught
DISPATCHED/RUNNING are deterministically re-run (``recover="requeue"``)
or terminated INTERRUPTED (``recover="fail"``).  Submit idempotency
keys survive restarts: a duplicate submit returns the original job id.

Cancellation: queued jobs are pulled straight out of the pending queue;
dispatched/running jobs get ``cancel_requested`` set, which the worker
checks before starting and the simulation engine polls every 1024
events via the thread-local abort hook
(:func:`repro.sim.engine.set_abort_check`) — the same early-exit shape
as the client-deregistration drain, applied to the whole run.  The
same hook doubles as the watchdog heartbeat.

Graceful shutdown (SIGINT/SIGTERM or the ``shutdown`` verb): admission
closes, queued jobs are canceled, running jobs drain (or are aborted in
``mode="now"``), the journal is compacted and closed, the JSON job
history is persisted atomically, and the process exits 0.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.experiments.registry import make_scenario, scenario_catalog
from repro.experiments.scenario import Scenario, run as run_scenario
from repro.sim.engine import RunAborted, set_abort_check

from .jobs import (
    CANCELED,
    COMPLETED,
    DISPATCHED,
    FAILED,
    INTERRUPTED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    PendingQueue,
)
from .journal import JobJournal, atomic_write_json, maybe_kill
from .protocol import (
    DEFAULT_ADDRESS,
    LineReader,
    ProtocolError,
    create_listener,
    decode_request,
    encode,
    error_response,
    ok_response,
)
from .watchdog import WatchdogConfig, WorkerWatchdog

__all__ = ["ServeConfig", "ServeServer", "scenario_from_spec"]

log = logging.getLogger("repro.serve")

#: Admission policies for jobs caught DISPATCHED/RUNNING by a crash.
RECOVER_POLICIES = ("requeue", "fail")


@dataclass
class ServeConfig:
    """Daemon knobs (all surfaced as ``repro serve`` flags).

    ``pace`` throttles execution toward wall-clock time: with
    ``pace=N``, each job occupies its worker for at least
    ``sim_time / N`` wall seconds (N simulated seconds per wall
    second); 0 runs the simulator flat out.  ``workers=0`` is an
    admission-only daemon — jobs queue but never dispatch — which is
    how the queue/cancel/reject paths are tested deterministically.

    ``journal_path`` enables the write-ahead job journal (crash
    recovery + idempotency across restarts); ``recover`` picks the
    policy for jobs caught mid-flight by a crash.  ``hang_timeout``
    (0 disables), ``abort_grace``, ``max_retries``, and
    ``retry_backoff`` parameterize the worker watchdog.
    """

    address: str = DEFAULT_ADDRESS
    workers: int = 2
    max_pending: int = 16
    pace: float = 0.0
    history_path: Optional[str] = None
    telemetry_interval: float = 1.0
    drain_timeout: Optional[float] = None
    journal_path: Optional[str] = None
    recover: str = "requeue"
    fsync_batch: int = 8
    snapshot_every: int = 256
    hang_timeout: float = 30.0
    abort_grace: float = 5.0
    max_retries: int = 2
    retry_backoff: float = 0.25

    def __post_init__(self):
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.pace < 0:
            raise ValueError("pace must be >= 0")
        if self.recover not in RECOVER_POLICIES:
            raise ValueError(
                f"recover must be one of {RECOVER_POLICIES}, "
                f"not {self.recover!r}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")

    def watchdog_config(self) -> WatchdogConfig:
        return WatchdogConfig(hang_timeout=self.hang_timeout,
                              abort_grace=self.abort_grace,
                              max_retries=self.max_retries,
                              retry_backoff=self.retry_backoff)


class ServeServer:
    """One daemon instance.  ``start()`` binds, recovers the journal,
    and spins up threads; ``serve_forever()`` additionally installs
    signal handlers and blocks; ``shutdown()`` drains and stops
    (idempotent, thread-safe).
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.address: Optional[str] = None
        self._listener = None
        self._queue = PendingQueue(self.config.max_pending)
        self._jobs: Dict[str, Job] = {}
        self._history: List[str] = []
        self._idempotency: Dict[str, str] = {}
        self._running_ids: set = set()
        self._counters = {key: 0 for key in (
            "submitted", "rejected", "dispatched",
            "completed", "failed", "canceled", "interrupted",
            "requeued", "deduplicated", "hangs", "recovered")}
        self._next_job = 0
        self._avg_wall: Optional[float] = None
        self._telemetry_seq = 0
        self._telemetry_ring: List[Dict[str, Any]] = []
        self._connections: set = set()
        self._lock = threading.RLock()
        self._shutting_down = False
        self._workers_stop = threading.Event()
        self._stopped = threading.Event()
        self._threads: List[threading.Thread] = []
        self._worker_count = 0
        self._journal: Optional[JobJournal] = None
        self._watchdog: Optional[WorkerWatchdog] = None
        self._started_monotonic = 0.0
        self._started_unix = 0.0

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> str:
        """Bind the listener, replay the journal (if any), and start
        all threads; returns the resolved address (TCP port 0 becomes
        the real ephemeral port)."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._listener, self.address = create_listener(self.config.address)
        self._listener.settimeout(0.2)
        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()
        if self.config.journal_path:
            self._recover_from_journal()
        accept = threading.Thread(target=self._accept_loop,
                                  name="serve-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        for _ in range(self.config.workers):
            self._spawn_worker()
        if self.config.workers > 0:
            self._watchdog = WorkerWatchdog(self, self.config.watchdog_config())
            self._watchdog.start()
        if self.config.telemetry_interval > 0:
            ticker = threading.Thread(target=self._telemetry_loop,
                                      name="serve-telemetry", daemon=True)
            ticker.start()
            self._threads.append(ticker)
        log.info("serving on %s (%d workers, max_pending=%d, journal=%s)",
                 self.address, self.config.workers, self.config.max_pending,
                 self.config.journal_path or "off")
        return self.address

    def _spawn_worker(self) -> None:
        with self._lock:
            index = self._worker_count
            self._worker_count += 1
        worker = threading.Thread(target=self._worker_loop,
                                  name=f"serve-worker-{index}",
                                  daemon=True)
        worker.start()
        with self._lock:
            self._threads.append(worker)

    def serve_forever(self) -> int:
        """CLI entry: start (if needed), trap SIGINT/SIGTERM into a
        graceful drain, and block until shutdown completes.  Returns 0
        on a clean drain."""
        if self._listener is None:
            self.start()
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                signal.signal(signum, self._on_signal)
        except ValueError:  # not the main thread (tests) — skip handlers
            pass
        self._stopped.wait()
        return 0

    def _on_signal(self, signum, frame) -> None:
        log.info("signal %s: draining and shutting down", signum)
        threading.Thread(target=self.shutdown, name="serve-shutdown",
                         daemon=True).start()

    def shutdown(self, mode: str = "drain") -> None:
        """Stop admission, cancel queued jobs, drain (or abort) running
        jobs, compact + close the journal, persist history, release the
        socket.  Safe to call from any thread, any number of times."""
        with self._lock:
            already = self._shutting_down
            self._shutting_down = True
        if already:
            # A concurrent caller owns the drain; wait it out (outside
            # the lock — the owner needs it to finish).
            self._stopped.wait()
            return
        clock = self._clock()
        pending = self._queue.drain()
        if self._watchdog is not None:
            pending.extend(self._watchdog.drain_delayed())
        for job in pending:
            with self._lock:
                if job.try_transition(CANCELED, clock=clock,
                                      error="daemon shutdown"):
                    self._journal_transition(job, CANCELED, clock,
                                             durable=False)
                    self._finalize(job)
        if mode == "now":
            with self._lock:
                for job_id in list(self._running_ids):
                    self._jobs[job_id].cancel_requested = True
        self._workers_stop.set()
        deadline = None if self.config.drain_timeout is None \
            else time.monotonic() + self.config.drain_timeout
        with self._lock:
            workers = [t for t in self._threads
                       if t.name.startswith("serve-worker")]
        for thread in workers:
            remaining = None if deadline is None \
                else max(0.0, deadline - time.monotonic())
            thread.join(remaining)
            if thread.is_alive():
                # Drain timed out: abort whatever is still running and
                # collect the worker.
                log.warning("drain timeout: aborting running jobs")
                with self._lock:
                    for job_id in list(self._running_ids):
                        self._jobs[job_id].cancel_requested = True
                thread.join()
        if self._watchdog is not None:
            self._watchdog.stop()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        if self._journal is not None:
            # Final compaction: a restart replays one small snapshot
            # instead of the whole log.
            try:
                self._compact_journal()
            finally:
                self._journal.close()
        self._write_history()
        log.info("shutdown complete: %s", self._counters)
        self._stopped.set()

    def _clock(self) -> float:
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # Journal: appends, snapshots, recovery

    def _journal_submit(self, job: Job) -> None:
        if self._journal is None:
            return
        self._journal.append({"type": "submit", "job": job.job_id,
                              "spec": job.spec, "priority": job.priority,
                              "key": job.key,
                              "clock": job.transitions[0][1]},
                             durable=True)

    def _journal_transition(self, job: Job, state: str, clock: float,
                            durable: bool) -> None:
        """Journal exactly the transition the caller just performed.
        ``state``/``clock`` are passed explicitly — never read back
        from ``job.transitions[-1]``, which a concurrent requeue or
        dispatch could have moved past between the caller's
        ``try_transition`` and this append."""
        if self._journal is None:
            return
        self._journal.append({"type": "transition", "job": job.job_id,
                              "state": state, "clock": clock,
                              "error": job.error, "attempt": job.attempt},
                             durable=durable)

    def _journal_result(self, job: Job) -> None:
        if self._journal is None:
            return
        self._journal.append({"type": "result", "job": job.job_id,
                              "result_json": job.result_json,
                              "events_processed": job.events_processed,
                              "sim_time": job.sim_time})

    def _journal_reject(self) -> None:
        if self._journal is None:
            return
        self._journal.append({"type": "reject"})

    def _journal_state(self) -> Dict[str, Any]:
        """Full daemon state as a snapshot payload (see
        :meth:`JobJournal.write_snapshot`)."""
        with self._lock:
            jobs = []
            for job_id in sorted(self._jobs):
                record = self._jobs[job_id].describe()
                record["result_json"] = self._jobs[job_id].result_json
                jobs.append(record)
            return {
                "jobs": jobs,
                "history": list(self._history),
                "idempotency": dict(self._idempotency),
                "counters": dict(self._counters),
                "next_job": self._next_job,
            }

    def _maybe_snapshot(self) -> None:
        if self._journal is None or not self._journal.should_snapshot:
            return
        self._compact_journal()

    def _compact_journal(self) -> None:
        """Snapshot + compact without losing concurrent appends: the
        seq floor is read *before* the state payload is built and the
        server lock is held across build + write, so every record the
        compaction drops (``seq <= floor``) is provably reflected in
        the snapshot, and anything a non-lock-holding appender slips
        in survives in the rewritten log (``seq > floor``)."""
        with self._lock:
            floor = self._journal.last_seq
            self._journal.write_snapshot(self._journal_state(), floor=floor)

    def _recover_from_journal(self) -> None:
        path = self.config.journal_path
        snapshot, records, last_seq = JobJournal.load(path)
        self._journal = JobJournal(path,
                                   fsync_batch=self.config.fsync_batch,
                                   snapshot_every=self.config.snapshot_every,
                                   start_seq=last_seq)
        if snapshot is None and not records:
            return  # fresh journal: nothing to restore, no compaction
        state = JobJournal.replay(snapshot, records)
        with self._lock:
            # Counters (a reject-only journal still carries a rejected
            # count), idempotency, and the *replayed* history all come
            # back even when no jobs survived compaction; the history
            # lands before the re-admission loop so _finalize() appends
            # jobs terminalized during recovery on top of it instead of
            # being wiped by a later wholesale assignment.
            for key, value in state["counters"].items():
                self._counters[key] = value
            self._next_job = max(self._next_job, state["next_job"])
            self._idempotency.update(state["idempotency"])
            self._history = list(state["history"])
        clock = self._clock()
        readmit: List[Job] = []
        for job_id in state["order"]:
            record = state["jobs"][job_id]
            scenario, build_error = None, None
            try:
                scenario = scenario_from_spec(record["spec"])
            except Exception as exc:  # registry drift between restarts
                build_error = f"{type(exc).__name__}: {exc}"
            job = Job.restore(record, scenario)
            with self._lock:
                self._jobs[job_id] = job
            if job.terminal:
                continue
            if scenario is None:
                job.try_transition(FAILED, clock=clock, error=json.dumps(
                    {"reason": "unrecoverable_spec",
                     "detail": build_error}, sort_keys=True))
                self._journal_transition(job, FAILED, clock, durable=False)
                self._finalize(job)
                continue
            if job.state == QUEUED:
                readmit.append(job)
            elif self.config.recover == "fail":
                state_at_crash = job.state
                job.try_transition(INTERRUPTED, clock=clock,
                                   error=json.dumps(
                                       {"reason": "daemon_crash",
                                        "state_at_crash": state_at_crash,
                                        "recover": "fail"}, sort_keys=True))
                self._journal_transition(job, INTERRUPTED, clock,
                                         durable=False)
                self._finalize(job)
            elif job.attempt > self.config.max_retries + 1:
                job.try_transition(FAILED, clock=clock, error=json.dumps(
                    {"reason": "retries_exhausted_at_recovery",
                     "attempts": job.attempt}, sort_keys=True))
                self._journal_transition(job, FAILED, clock, durable=False)
                self._finalize(job)
            else:  # requeue: deterministic re-run
                job.attempt += 1
                job.try_transition(QUEUED, clock=clock)
                self._journal_transition(job, QUEUED, clock, durable=False)
                with self._lock:
                    self._counters["recovered"] += 1
                readmit.append(job)
        # Queued jobs re-enter in submission order; the priority heap
        # restores (-priority, seq) dispatch order on top of that.
        for job in readmit:
            self._queue.push(job, force=True)
        # Compact immediately: the restart boots from one snapshot, and
        # the recovery transitions just appended are folded in.
        self._compact_journal()
        log.info("journal recovery: %d jobs (%d re-admitted, "
                 "%d in history), policy=%s",
                 len(state["jobs"]), len(readmit), len(self._history),
                 self.config.recover)

    # ------------------------------------------------------------------
    # Accept loop and connection handling

    def _accept_loop(self) -> None:
        while not self._shutting_down:
            try:
                conn, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            conn.settimeout(None)
            with self._lock:
                self._connections.add(conn)
            threading.Thread(target=self._handle_connection, args=(conn,),
                             name="serve-conn", daemon=True).start()

    def _handle_connection(self, conn) -> None:
        reader = LineReader(conn)
        try:
            while True:
                try:
                    line = reader.readline()
                except ProtocolError as exc:  # oversized input
                    self._send(conn, error_response(exc.code, exc.message,
                                                    exc.details))
                    break
                if line is None:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_request(line)
                    self._dispatch(request, conn)
                except ProtocolError as exc:
                    self._send(conn, error_response(exc.code, exc.message,
                                                    exc.details))
                except Exception as exc:  # noqa: BLE001 — daemon must survive
                    log.exception("handler error")
                    self._send(conn, error_response(
                        "internal_error", f"{type(exc).__name__}: {exc}"))
        except (ConnectionError, BrokenPipeError, OSError):
            log.debug("client disconnected mid-request")
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _send(self, conn, payload: Dict[str, Any]) -> None:
        conn.sendall(encode(payload))

    def _dispatch(self, request: Dict[str, Any], conn) -> None:
        verb = request["verb"]
        if verb == "telemetry":
            self._handle_telemetry(request, conn)
            return
        handler = getattr(self, f"_verb_{verb}")
        payload = handler(request)
        self._send(conn, ok_response(verb, **payload))
        if verb == "shutdown":
            threading.Thread(target=self.shutdown,
                             args=(payload["mode"],),
                             name="serve-shutdown", daemon=True).start()

    # ------------------------------------------------------------------
    # Verbs

    def _verb_ping(self, request) -> Dict[str, Any]:
        return {"address": self.address, "uptime_s": round(self._clock(), 3)}

    def _verb_scenarios(self, request) -> Dict[str, Any]:
        return {"scenarios": scenario_catalog()}

    def _verb_submit(self, request) -> Dict[str, Any]:
        scenario, spec = _build_scenario(request)
        priority = request.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ProtocolError("bad_request", "priority must be an integer")
        key = request.get("key")
        if key is not None and (not isinstance(key, str)
                                or not key or len(key) > 256):
            raise ProtocolError("bad_request",
                                "key must be a non-empty string of at "
                                "most 256 characters")
        with self._lock:
            if self._shutting_down:
                raise ProtocolError("shutting_down",
                                    "daemon is shutting down; not accepting "
                                    "new jobs")
            if key is not None and key in self._idempotency:
                # Idempotent re-submit: the original job, whatever its
                # current state — including across daemon restarts.
                job = self._jobs[self._idempotency[key]]
                self._counters["deduplicated"] += 1
                return {"job": job.job_id, "state": job.state,
                        "deduplicated": True,
                        "queue_depth": len(self._queue)}
            depth = len(self._queue)
            if depth >= self.config.max_pending:
                self._counters["rejected"] += 1
                self._journal_reject()
                raise ProtocolError(
                    "queue_full",
                    f"pending queue is full ({self.config.max_pending} "
                    f"jobs)",
                    details={"queue_depth": depth,
                             "max_pending": self.config.max_pending,
                             "retry_after_hint": self._retry_hint(depth)})
            self._next_job += 1
            job_id = f"job-{self._next_job:04d}"
            job = Job(job_id, scenario, spec, priority=priority,
                      clock=self._clock(), key=key)
            self._jobs[job_id] = job
            if key is not None:
                self._idempotency[key] = job_id
            self._counters["submitted"] += 1
            # WAL ordering: the submit is durable before it is either
            # acknowledged or runnable, so an acked job is always
            # recoverable and a crash here (chaos point "mid_enqueue")
            # recovers an unacked-but-journaled job exactly once.
            self._journal_submit(job)
            maybe_kill("mid_enqueue")
            self._queue.push(job, force=True)
        self._maybe_snapshot()
        return {"job": job_id, "state": QUEUED, "deduplicated": False,
                "queue_depth": len(self._queue)}

    def _retry_hint(self, depth: int) -> float:
        """Seconds a rejected submitter should wait before retrying:
        queue depth times the observed mean job wall time, divided
        across the worker pool."""
        avg = self._avg_wall if self._avg_wall is not None else 0.5
        return round(max(0.05, depth * avg / max(1, self.config.workers)), 3)

    def _verb_status(self, request) -> Dict[str, Any]:
        job_id = request.get("job")
        if job_id is None:
            with self._lock:
                active = [job.describe() for job in self._jobs.values()
                          if not job.terminal]
            active.sort(key=lambda record: record["id"])
            return {"daemon": self._snapshot(), "jobs": active}
        return {"job": self._get_job(job_id).describe()}

    def _verb_result(self, request) -> Dict[str, Any]:
        job = self._get_job(request.get("job"))
        if job.state == COMPLETED:
            return {"job": job.job_id, "state": job.state,
                    "result_json": job.result_json}
        if job.terminal:
            return {"job": job.job_id, "state": job.state,
                    "error": job.error, "result_json": None}
        raise ProtocolError(
            "not_ready", f"job {job.job_id} is {job.state}; no result yet")

    def _verb_cancel(self, request) -> Dict[str, Any]:
        job = self._get_job(request.get("job"))
        clock = self._clock()
        if job.state == QUEUED:
            with self._lock:
                removed = self._queue.remove(job.job_id)
                if removed is not None and removed.try_transition(
                        CANCELED, clock=clock, error="canceled by client"):
                    self._journal_transition(removed, CANCELED, clock,
                                             durable=True)
                    self._finalize(removed)
                    return {"job": job.job_id, "state": CANCELED,
                            "canceled": True}
        if job.terminal:
            return {"job": job.job_id, "state": job.state, "canceled": False}
        # Dispatched or running (or queued-but-popped): cooperative
        # cancel — the worker and the engine abort hook pick it up.
        job.cancel_requested = True
        return {"job": job.job_id, "state": job.state, "canceled": False,
                "cancel_requested": True}

    def _verb_history(self, request) -> Dict[str, Any]:
        limit = request.get("limit", 50)
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise ProtocolError("bad_request",
                                "limit must be a positive integer")
        with self._lock:
            job_ids = self._history[-limit:]
            records = [self._jobs[job_id].describe() for job_id in job_ids
                       if job_id in self._jobs]
        return {"jobs": records, "total": len(self._history)}

    def _verb_shutdown(self, request) -> Dict[str, Any]:
        mode = request.get("mode", "drain")
        if mode not in ("drain", "now"):
            raise ProtocolError("bad_request",
                                "shutdown mode must be 'drain' or 'now'")
        return {"mode": mode, "stopping": True}

    def _handle_telemetry(self, request, conn) -> None:
        follow = request.get("follow", 1)
        if not isinstance(follow, int) or isinstance(follow, bool) \
                or not 1 <= follow <= 10000:
            raise ProtocolError("bad_request",
                                "follow must be an integer in [1, 10000]")
        interval = request.get("interval", self.config.telemetry_interval
                               or 1.0)
        try:
            interval = max(0.01, float(interval))
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad_request",
                                "interval must be a number") from exc
        include_ring = bool(request.get("ring", False))
        for index in range(follow):
            payload = {"snapshot": self._snapshot()}
            if include_ring:
                with self._lock:
                    payload["ring"] = list(self._telemetry_ring)
            self._send(conn, ok_response("telemetry", **payload))
            if index + 1 < follow:
                if self._stopped.wait(interval):
                    return

    def _get_job(self, job_id) -> Job:
        if not isinstance(job_id, str):
            raise ProtocolError("bad_request", "request needs a 'job' id")
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError("unknown_job", f"no such job {job_id!r}")
        return job

    # ------------------------------------------------------------------
    # Telemetry

    def _snapshot(self) -> Dict[str, Any]:
        with self._lock:
            states = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            self._telemetry_seq += 1
            return {
                "seq": self._telemetry_seq,
                "uptime_s": round(self._clock(), 3),
                "address": self.address,
                "admission": "closed" if self._shutting_down else "open",
                "queue_depth": len(self._queue),
                "max_pending": self._queue.max_pending,
                "workers": self.config.workers,
                "running": sorted(self._running_ids),
                "jobs": states,
                "counters": dict(self._counters),
                "idempotency_keys": len(self._idempotency),
                "journal": (self._journal.stats()
                            if self._journal is not None else None),
                "watchdog": (self._watchdog.stats()
                             if self._watchdog is not None else None),
            }

    def _telemetry_loop(self) -> None:
        while not self._stopped.wait(self.config.telemetry_interval):
            snapshot = self._snapshot()
            with self._lock:
                self._telemetry_ring.append(snapshot)
                del self._telemetry_ring[:-64]

    # ------------------------------------------------------------------
    # Workers

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.pop(timeout=0.2)
            if job is None:
                if self._workers_stop.is_set():
                    return
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        attempt = job.attempt
        clock = self._clock()
        # Transition + journal append + counters happen atomically
        # under the server lock at every step, so a concurrent
        # compaction (which holds the same lock across state-build +
        # snapshot) can never truncate a record whose effects are not
        # yet in the snapshot, and the journaled record is exactly the
        # transition this worker performed.
        with self._lock:
            if job.cancel_requested \
                    or not job.try_transition(DISPATCHED, clock=clock):
                if job.try_transition(CANCELED, clock=clock,
                                      error="canceled before dispatch"):
                    self._journal_transition(job, CANCELED, clock,
                                             durable=True)
                self._finalize(job)
                return
            self._journal_transition(job, DISPATCHED, clock, durable=False)
            self._counters["dispatched"] += 1
            self._running_ids.add(job.job_id)
        job.last_heartbeat = time.monotonic()
        with self._lock:
            clock = self._clock()
            if job.try_transition(RUNNING, clock=clock):
                # Durable so --recover=fail can tell "was mid-run" from
                # "never dispatched" after a crash.
                self._journal_transition(job, RUNNING, clock, durable=True)
        maybe_kill("mid_run")
        started = time.monotonic()

        def heartbeat_abort_check() -> bool:
            # Called by the engine every 1024 events: one stamp is the
            # watchdog heartbeat, the return value the cooperative
            # abort (client cancel or watchdog hang-abort).
            job.last_heartbeat = time.monotonic()
            return job.cancel_requested or job.abort_requested

        previous = set_abort_check(heartbeat_abort_check)
        outcome, error, aborted = None, None, False
        try:
            outcome = run_scenario(job.scenario)
        except RunAborted:
            aborted = True
        except Exception as exc:  # noqa: BLE001 — job isolation contract
            error = f"{type(exc).__name__}: {exc}"
        finally:
            set_abort_check(previous)
        if job.attempt != attempt:
            # The watchdog declared this worker wedged and requeued the
            # job (bumping attempt); whatever we produced is stale.
            log.warning("%s: discarding stale attempt %d outcome",
                        job.job_id, attempt)
            return
        if aborted and job.abort_requested and not job.cancel_requested:
            # Watchdog hang-abort, not a client cancel: retry budget.
            self._requeue_hung(job)
            return
        paced = True
        if not aborted and error is None:
            job.result_json = outcome.to_json()
            job.events_processed = outcome.events_processed
            job.sim_time = outcome.sim_time
            paced = self._pace(outcome.sim_time, started, job)
        with self._lock:
            if job.attempt != attempt:
                # The watchdog force-requeued the job while we paced.
                log.warning("%s: discarding stale attempt %d outcome",
                            job.job_id, attempt)
                return
            clock = self._clock()
            if aborted:
                final, err = CANCELED, "canceled while running"
            elif error is not None:
                final, err = FAILED, error
            elif paced:
                final, err = COMPLETED, None
                self._journal_result(job)
            else:  # canceled mid-pacing: the result is discarded
                job.result_json = None
                final, err = CANCELED, "canceled while running (paced)"
            if job.try_transition(final, clock=clock, error=err):
                self._journal_transition(job, final, clock, durable=True)
                if final == COMPLETED:
                    wall = time.monotonic() - started
                    self._avg_wall = wall if self._avg_wall is None \
                        else 0.8 * self._avg_wall + 0.2 * wall
            self._finalize(job)
        self._maybe_snapshot()

    def _pace(self, sim_time: float, started: float, job: Job) -> bool:
        """Wall-clock pacing: hold the worker until ``sim_time /
        config.pace`` wall seconds have elapsed.  Returns False if the
        job was canceled while pacing."""
        if self.config.pace <= 0:
            return True
        deadline = started + sim_time / self.config.pace
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return True
            if job.cancel_requested:
                return False
            job.last_heartbeat = time.monotonic()
            time.sleep(min(remaining, 0.05))

    def _finalize(self, job: Job) -> None:
        with self._lock:
            self._running_ids.discard(job.job_id)
            if job.terminal and job.job_id not in self._history:
                self._history.append(job.job_id)
                self._counters[job.state.lower()] += 1

    # ------------------------------------------------------------------
    # Watchdog callbacks (see repro.serve.watchdog)

    def _running_jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._running_ids]

    def _note_hang(self, job: Job) -> None:
        with self._lock:
            self._counters["hangs"] += 1
        log.warning("%s: heartbeat stale beyond %.3fs (attempt %d); "
                    "requesting cooperative abort", job.job_id,
                    self.config.hang_timeout, job.attempt)

    def _admit_requeued(self, job: Job) -> None:
        """A backoff delay elapsed: the requeued job re-enters the
        pending queue (bypassing the admission bound — it was already
        accepted once)."""
        self._queue.push(job, force=True)

    def _hang_reason(self, job: Job) -> str:
        return json.dumps({"reason": "watchdog_hang",
                           "attempts": job.attempt,
                           "hang_timeout": self.config.hang_timeout,
                           "max_retries": self.config.max_retries},
                          sort_keys=True)

    def _requeue_hung(self, job: Job) -> None:
        """Cooperative hang path: the run aborted via the engine hook;
        the worker itself retires or requeues it."""
        requeued = False
        with self._lock:
            self._running_ids.discard(job.job_id)
            job.abort_requested = False
            job.hang_detected_at = None
            job.last_heartbeat = None
            clock = self._clock()
            if job.attempt > self.config.max_retries:
                if job.try_transition(FAILED, clock=clock,
                                      error=self._hang_reason(job)):
                    self._journal_transition(job, FAILED, clock,
                                             durable=True)
                self._finalize(job)
                return
            delay = self.config.watchdog_config().backoff_for(job.attempt)
            job.attempt += 1
            if job.try_transition(QUEUED, clock=clock):
                self._counters["requeued"] += 1
                self._journal_transition(job, QUEUED, clock, durable=True)
                requeued = True
        if requeued:
            if self._watchdog is not None:
                self._watchdog.schedule_requeue(job, delay)
            else:
                self._admit_requeued(job)

    def _force_requeue(self, job: Job) -> None:
        """Forceful hang path: the worker never answered the
        cooperative abort — presume it wedged, take the job away, and
        replace the lost worker."""
        with self._lock:
            self._running_ids.discard(job.job_id)
            clock = self._clock()
            if job.attempt > self.config.max_retries:
                if job.try_transition(FAILED, clock=clock,
                                      error=self._hang_reason(job)):
                    self._journal_transition(job, FAILED, clock,
                                             durable=True)
                    self._finalize(job)
                    self._spawn_worker()
                return
            delay = self.config.watchdog_config().backoff_for(job.attempt)
            job.abort_requested = False  # the re-run starts clean
            job.hang_detected_at = None
            job.last_heartbeat = None
            # Bumped before the transition: marks the old worker's
            # eventual outcome as stale.
            job.attempt += 1
            if not job.try_transition(QUEUED, clock=clock):
                # Lost the race with the worker finishing after all.
                job.attempt -= 1
                return
            self._counters["requeued"] += 1
            self._journal_transition(job, QUEUED, clock, durable=True)
            log.warning("%s: worker unresponsive; force-requeued "
                        "(attempt %d) and spawning replacement worker",
                        job.job_id, job.attempt)
        if self._watchdog is not None:
            self._watchdog.schedule_requeue(job, delay)
        else:
            self._admit_requeued(job)
        self._spawn_worker()

    # ------------------------------------------------------------------
    # History persistence

    def _write_history(self) -> None:
        if not self.config.history_path:
            return
        with self._lock:
            payload = {
                "daemon": {
                    "address": self.address,
                    "started_unix": self._started_unix,
                    "workers": self.config.workers,
                    "max_pending": self.config.max_pending,
                    "pace": self.config.pace,
                    "journal": self.config.journal_path,
                    "recover": self.config.recover,
                },
                "counters": dict(self._counters),
                "jobs": [self._jobs[job_id].describe()
                         for job_id in self._history
                         if job_id in self._jobs],
            }
        atomic_write_json(self.config.history_path, payload)
        log.info("wrote job history to %s (%d jobs)",
                 self.config.history_path, len(payload["jobs"]))


# ---------------------------------------------------------------------------
# Submission -> Scenario

def scenario_from_spec(spec: Dict[str, Any]) -> Scenario:
    """Rebuild the Scenario a journaled submission spec describes —
    the recovery-side inverse of :func:`_build_scenario`.  Inline
    specs carry ``kind``/``params`` (seed and duration already folded
    in); registry specs carry ``name``/``seed``/``duration``/
    ``overrides``."""
    if "kind" in spec:
        return Scenario(kind=spec["kind"], name=spec.get("name") or "",
                        params=dict(spec.get("params") or {}))
    overrides = spec.get("overrides") or {}
    return make_scenario(spec["name"], seed=spec.get("seed", 0),
                         duration=spec.get("duration"), **overrides)


def _build_scenario(request: Dict[str, Any]):
    """Build the Scenario a submit request names, or raise a structured
    ``bad_scenario``/``bad_request`` error.

    Two submission shapes: ``{"name": <registry name>, "seed",
    "duration", "overrides"}`` goes through ``make_scenario`` (the same
    catalog the CLI/sweep/bench use), and ``{"scenario": {"kind",
    "params"}}`` builds an inline params-family Scenario.  Inline
    ``kind="experiment"`` is rejected — ExperimentConfig is not
    JSON-expressible; submit a registry name with overrides instead.
    """
    seed = request.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError("bad_request", "seed must be an integer")
    duration = request.get("duration")
    if duration is not None:
        try:
            duration = float(duration)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad_request",
                                "duration must be a number") from exc
    name = request.get("name")
    inline = request.get("scenario")
    if name is not None:
        if not isinstance(name, str):
            raise ProtocolError("bad_request", "name must be a string")
        overrides = request.get("overrides") or {}
        if not isinstance(overrides, dict) \
                or not all(isinstance(k, str) for k in overrides):
            raise ProtocolError("bad_request",
                                "overrides must be an object with string "
                                "keys")
        try:
            scenario = make_scenario(name, seed=seed, duration=duration,
                                     **overrides)
        except Exception as exc:  # bad name or bad override values
            raise ProtocolError("bad_scenario", str(exc)) from exc
        spec = {"name": name, "seed": seed, "duration": duration,
                "overrides": overrides}
        return scenario, spec
    if inline is not None:
        if not isinstance(inline, dict):
            raise ProtocolError("bad_request",
                                "scenario must be an object with a 'kind'")
        kind = inline.get("kind")
        if kind == "experiment":
            raise ProtocolError(
                "bad_scenario",
                "inline experiment configs are not supported; submit a "
                "registry scenario name (see the 'scenarios' verb)")
        params = dict(inline.get("params") or {})
        params["seed"] = seed
        if duration is not None:
            params["duration"] = duration
        try:
            scenario = Scenario(kind=kind, name=inline.get("name") or "",
                                params=params)
        except Exception as exc:
            raise ProtocolError("bad_scenario", str(exc)) from exc
        spec = {"kind": kind, "name": inline.get("name") or "",
                "params": params}
        return scenario, spec
    raise ProtocolError("bad_request",
                        "submit needs a registry 'name' or an inline "
                        "'scenario' object")
