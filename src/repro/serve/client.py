"""Client library for the serve daemon.

:class:`ServeClient` wraps one socket connection with typed helpers for
every protocol verb, so tests, examples, CI, and the ``repro
submit/status/cancel`` CLI verbs all drive the daemon the same way::

    with ServeClient("unix:/tmp/repro-serve.sock") as client:
        job = client.submit(name="fleet_ref", seed=0)
        final = client.wait(job)
        canonical = client.result_json(job)   # byte-identical to a
                                              # direct run(scenario)

Server-side errors surface as :class:`ServeError` carrying the
structured ``code`` (``queue_full``, ``unknown_job``, ...) so callers
can branch on overload/reject outcomes instead of parsing messages.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterator, List, Optional

from .protocol import (
    DEFAULT_ADDRESS,
    LineReader,
    connect,
)

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A structured error response from the daemon."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServeClient:
    """One connection to a serve daemon (context-manager friendly)."""

    def __init__(self, address: str = DEFAULT_ADDRESS,
                 timeout: float = 60.0):
        self.address = address
        self._sock = connect(address, timeout=timeout)
        self._reader = LineReader(self._sock)

    # ------------------------------------------------------------------
    # Plumbing

    def request(self, verb: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and return the (single) response payload."""
        self._send(verb, **fields)
        return self._receive()

    def _send(self, verb: str, **fields: Any) -> None:
        payload = {"verb": verb}
        payload.update({k: v for k, v in fields.items() if v is not None})
        self._sock.sendall(
            (json.dumps(payload, separators=(",", ":")) + "\n")
            .encode("utf-8"))

    def _receive(self) -> Dict[str, Any]:
        line = self._reader.readline()
        if line is None:
            raise ConnectionError("daemon closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(error.get("code", "unknown"),
                             error.get("message", "daemon error"))
        return response

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def connect_retry(cls, address: str = DEFAULT_ADDRESS,
                      timeout: float = 10.0,
                      poll: float = 0.05) -> "ServeClient":
        """Connect to a daemon that may still be starting (CI helper):
        retry until ``timeout`` wall seconds, then raise."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                client = cls(address)
                client.ping()
                return client
            except (OSError, ConnectionError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    # ------------------------------------------------------------------
    # Verbs

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def scenarios(self) -> Dict[str, Dict]:
        """The registry catalog of valid submit targets."""
        return self.request("scenarios")["scenarios"]

    def submit(self, name: Optional[str] = None,
               scenario: Optional[Dict[str, Any]] = None,
               seed: int = 0, duration: Optional[float] = None,
               overrides: Optional[Dict[str, Any]] = None,
               priority: int = 0) -> str:
        """Submit a registry scenario (``name`` + ``overrides``) or an
        inline params scenario (``scenario={"kind", "params"}``);
        returns the job id.  Raises :class:`ServeError` with code
        ``queue_full`` when the bounded pending queue rejects it."""
        response = self.request("submit", name=name, scenario=scenario,
                                seed=seed, duration=duration,
                                overrides=overrides, priority=priority)
        return response["job"]

    def status(self, job: Optional[str] = None) -> Dict[str, Any]:
        """One job's lifecycle record, or (with no ``job``) the daemon
        summary ``{"daemon": snapshot, "jobs": [active...]}``."""
        response = self.request("status", job=job)
        return response["job"] if job is not None else {
            "daemon": response["daemon"], "jobs": response["jobs"]}

    def result(self, job: str) -> Dict[str, Any]:
        """The completed job's canonical result, parsed."""
        return json.loads(self.result_json(job))

    def result_json(self, job: str) -> str:
        """The completed job's canonical result as the exact byte
        string ``run(scenario).to_json()`` produced on the daemon —
        the determinism contract's comparison form."""
        response = self.request("result", job=job)
        if response.get("result_json") is None:
            raise ServeError("no_result",
                             f"job {job} finished {response['state']}: "
                             f"{response.get('error')}")
        return response["result_json"]

    def cancel(self, job: str) -> Dict[str, Any]:
        """Cancel a job.  Queued jobs cancel immediately
        (``canceled: true``); dispatched/running jobs get a cooperative
        cancel request and reach CANCELED shortly after."""
        return self.request("cancel", job=job)

    def history(self, limit: int = 50) -> List[Dict[str, Any]]:
        return self.request("history", limit=limit)["jobs"]

    def telemetry(self, ring: bool = False) -> Dict[str, Any]:
        response = self.request("telemetry", ring=ring or None)
        return response

    def telemetry_stream(self, follow: int, interval: float = 0.1,
                         ) -> Iterator[Dict[str, Any]]:
        """Subscribe to ``follow`` periodic snapshots (one per yielded
        dict) spaced ``interval`` seconds apart."""
        self._send("telemetry", follow=follow, interval=interval)
        for _ in range(follow):
            yield self._receive()["snapshot"]

    def shutdown(self, mode: str = "drain") -> Dict[str, Any]:
        return self.request("shutdown", mode=mode)

    def wait(self, job: str, timeout: float = 120.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll ``status`` until the job reaches a terminal state;
        returns the final record.  Raises TimeoutError past
        ``timeout``."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job)
            if record["state"] in ("COMPLETED", "FAILED", "CANCELED"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job} still {record['state']} after {timeout}s")
            time.sleep(poll)
