"""Client library for the serve daemon.

:class:`ServeClient` wraps one socket connection with typed helpers for
every protocol verb, so tests, examples, CI, and the ``repro
submit/status/cancel`` CLI verbs all drive the daemon the same way::

    with ServeClient("unix:/tmp/repro-serve.sock") as client:
        job = client.submit(name="fleet_ref", seed=0)
        final = client.wait(job)
        canonical = client.result_json(job)   # byte-identical to a
                                              # direct run(scenario)

Server-side errors surface as :class:`ServeError` carrying the
structured ``code`` (``queue_full``, ``unknown_job``, ...) and any
extra ``details`` the daemon attached (``queue_full`` carries
``queue_depth`` and ``retry_after_hint``) so callers can branch on
overload/reject outcomes instead of parsing messages.

Resilience: every request accepts a ``deadline`` (wall seconds for
this one round-trip); :meth:`ServeClient.submit` accepts an
``idempotency_key`` plus a ``retries`` budget, and on ``queue_full``
backs off by the daemon's ``retry_after_hint`` while on a dropped
connection it reconnects and safely re-submits — the key makes the
re-submit return the original job id instead of enqueueing a
duplicate, even across a daemon restart.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Iterator, List, Optional

from .protocol import (
    DEFAULT_ADDRESS,
    LineReader,
    connect,
)

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A structured error response from the daemon.

    ``details`` carries whatever extra fields the daemon put in the
    error object beyond ``code``/``message`` — e.g. ``queue_depth`` and
    ``retry_after_hint`` on ``queue_full``.
    """

    def __init__(self, code: str, message: str,
                 details: Optional[Dict[str, Any]] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class ServeClient:
    """One connection to a serve daemon (context-manager friendly)."""

    def __init__(self, address: str = DEFAULT_ADDRESS,
                 timeout: float = 60.0):
        self.address = address
        self.timeout = timeout
        self._sock = connect(address, timeout=timeout)
        self._reader = LineReader(self._sock)

    # ------------------------------------------------------------------
    # Plumbing

    def request(self, verb: str, deadline: Optional[float] = None,
                **fields: Any) -> Dict[str, Any]:
        """Send one request and return the (single) response payload.

        ``deadline`` bounds this round-trip in wall seconds (socket
        timeout swapped for its duration; ``socket.timeout`` — an
        ``OSError`` — surfaces if the daemon does not answer in time).
        """
        if deadline is None:
            self._send(verb, **fields)
            return self._receive()
        self._sock.settimeout(deadline)
        try:
            self._send(verb, **fields)
            return self._receive()
        finally:
            try:
                self._sock.settimeout(self.timeout)
            except OSError:
                pass  # socket already dead; the caller sees the error

    def _send(self, verb: str, **fields: Any) -> None:
        payload = {"verb": verb}
        payload.update({k: v for k, v in fields.items() if v is not None})
        self._sock.sendall(
            (json.dumps(payload, separators=(",", ":")) + "\n")
            .encode("utf-8"))

    def _receive(self) -> Dict[str, Any]:
        line = self._reader.readline()
        if line is None:
            raise ConnectionError("daemon closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            details = {k: v for k, v in error.items()
                       if k not in ("code", "message")}
            raise ServeError(error.get("code", "unknown"),
                             error.get("message", "daemon error"),
                             details=details)
        return response

    def _reconnect(self) -> None:
        """Drop the (presumed dead) socket and dial the daemon again."""
        self.close()
        self._sock = connect(self.address, timeout=self.timeout)
        self._reader = LineReader(self._sock)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def connect_retry(cls, address: str = DEFAULT_ADDRESS,
                      timeout: float = 10.0,
                      poll: float = 0.05) -> "ServeClient":
        """Connect to a daemon that may still be starting (CI helper):
        retry until ``timeout`` wall seconds, then raise."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                client = cls(address)
                client.ping()
                return client
            except (OSError, ConnectionError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(poll)

    # ------------------------------------------------------------------
    # Verbs

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def scenarios(self) -> Dict[str, Dict]:
        """The registry catalog of valid submit targets."""
        return self.request("scenarios")["scenarios"]

    def submit(self, name: Optional[str] = None,
               scenario: Optional[Dict[str, Any]] = None,
               seed: int = 0, duration: Optional[float] = None,
               overrides: Optional[Dict[str, Any]] = None,
               priority: int = 0,
               idempotency_key: Optional[str] = None,
               retries: int = 0,
               max_retry_wait: float = 5.0,
               deadline: Optional[float] = None) -> str:
        """Submit a registry scenario (``name`` + ``overrides``) or an
        inline params scenario (``scenario={"kind", "params"}``);
        returns the job id.

        With ``retries=0`` a full queue raises :class:`ServeError`
        (code ``queue_full``, with ``queue_depth`` and
        ``retry_after_hint`` in ``.details``).  With ``retries > 0``
        the client sleeps for the daemon's hint (capped at
        ``max_retry_wait``) and tries again.  A dropped connection is
        retried too — but only when ``idempotency_key`` is set, because
        only the key makes the re-submit safe: the daemon answers a
        duplicate key with the original job id (``deduplicated`` in the
        response), including across a daemon restart, so a submit whose
        ack was lost in the crash cannot enqueue twice.
        """
        attempts_left = max(0, retries)
        while True:
            try:
                response = self.request(
                    "submit", deadline=deadline, name=name,
                    scenario=scenario, seed=seed, duration=duration,
                    overrides=overrides, priority=priority,
                    key=idempotency_key)
                return response["job"]
            except ServeError as exc:
                if exc.code != "queue_full" or attempts_left <= 0:
                    raise
                attempts_left -= 1
                hint = exc.details.get("retry_after_hint", 0.1)
                time.sleep(min(float(hint), max_retry_wait))
            except (ConnectionError, OSError):
                if idempotency_key is None or attempts_left <= 0:
                    raise
                attempts_left -= 1
                time.sleep(min(0.2, max_retry_wait))
                try:
                    self._reconnect()
                except (ConnectionError, OSError):
                    continue  # daemon still restarting; burn a retry

    def status(self, job: Optional[str] = None) -> Dict[str, Any]:
        """One job's lifecycle record, or (with no ``job``) the daemon
        summary ``{"daemon": snapshot, "jobs": [active...]}``."""
        response = self.request("status", job=job)
        return response["job"] if job is not None else {
            "daemon": response["daemon"], "jobs": response["jobs"]}

    def result(self, job: str) -> Dict[str, Any]:
        """The completed job's canonical result, parsed."""
        return json.loads(self.result_json(job))

    def result_json(self, job: str) -> str:
        """The completed job's canonical result as the exact byte
        string ``run(scenario).to_json()`` produced on the daemon —
        the determinism contract's comparison form."""
        response = self.request("result", job=job)
        if response.get("result_json") is None:
            raise ServeError("no_result",
                             f"job {job} finished {response['state']}: "
                             f"{response.get('error')}")
        return response["result_json"]

    def cancel(self, job: str) -> Dict[str, Any]:
        """Cancel a job.  Queued jobs cancel immediately
        (``canceled: true``); dispatched/running jobs get a cooperative
        cancel request and reach CANCELED shortly after."""
        return self.request("cancel", job=job)

    def history(self, limit: int = 50) -> List[Dict[str, Any]]:
        return self.request("history", limit=limit)["jobs"]

    def telemetry(self, ring: bool = False) -> Dict[str, Any]:
        response = self.request("telemetry", ring=ring or None)
        return response

    def telemetry_stream(self, follow: int, interval: float = 0.1,
                         ) -> Iterator[Dict[str, Any]]:
        """Subscribe to ``follow`` periodic snapshots (one per yielded
        dict) spaced ``interval`` seconds apart."""
        self._send("telemetry", follow=follow, interval=interval)
        for _ in range(follow):
            yield self._receive()["snapshot"]

    def shutdown(self, mode: str = "drain") -> Dict[str, Any]:
        return self.request("shutdown", mode=mode)

    def wait(self, job: str, timeout: float = 120.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll ``status`` until the job reaches a terminal state;
        returns the final record.  Raises TimeoutError past
        ``timeout``."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job)
            if record["state"] in ("COMPLETED", "FAILED", "CANCELED",
                                   "INTERRUPTED"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job} still {record['state']} after {timeout}s")
            time.sleep(poll)
