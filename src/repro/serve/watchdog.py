"""Worker watchdog: heartbeat-based hang detection for running jobs.

Every running job heartbeats through the engine abort hook — the
simulator polls the hook every 1024 events, and the hook stamps
``job.last_heartbeat`` before answering, so a healthy run heartbeats
continuously for free.  A job whose heartbeat goes stale for
``hang_timeout`` seconds is *hung*: wedged outside the event loop (a
pathological cost model, a deadlock, a stuck syscall) where no engine
poll will ever happen.

The watchdog escalates in two steps, mirroring the PR-1 supervisor
shape (detect → cooperative remedy → forceful remedy):

1. **Cooperative abort** — ``job.abort_requested`` is set.  If the run
   resumes polling, the abort hook answers True, the engine raises
   ``RunAborted``, and the *worker itself* requeues the job with a
   bounded retry budget and exponential backoff.
2. **Forceful requeue** — if the heartbeat is still stale
   ``abort_grace`` seconds after step 1, the worker thread is presumed
   wedged: the watchdog requeues (or fails) the job directly, bumps
   ``job.attempt`` so the wedged worker's eventual outcome is
   recognizably stale and discarded, and asks the server to spawn a
   replacement worker so capacity is not silently lost.

Either way a job that hangs past its retry budget terminates FAILED
with a structured JSON reason (``{"reason": "watchdog_hang", ...}``).

Requeues (watchdog, cooperative, and crash recovery alike) re-enter
the pending queue through :meth:`WorkerWatchdog.schedule_requeue`,
which holds the job for its backoff delay before force-pushing it —
bounded retries + backoff without growing the priority heap with
not-yet-due work.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = ["WatchdogConfig", "WorkerWatchdog"]


@dataclass
class WatchdogConfig:
    """Hang-handling knobs (all surfaced as ``repro serve`` flags).

    ``hang_timeout <= 0`` disables the watchdog entirely.
    """

    hang_timeout: float = 30.0
    abort_grace: float = 5.0
    max_retries: int = 2
    retry_backoff: float = 0.25
    poll_interval: float = 0.05

    @property
    def enabled(self) -> bool:
        return self.hang_timeout > 0

    def backoff_for(self, attempt: int) -> float:
        """Exponential backoff before re-dispatching attempt N+1."""
        return self.retry_backoff * (2 ** max(0, attempt - 1))


class WorkerWatchdog:
    """One background thread owning hang detection and delayed
    requeues for a :class:`~repro.serve.server.ServeServer`."""

    def __init__(self, server, config: WatchdogConfig):
        self._server = server
        self.config = config
        self._stop = threading.Event()
        self._lock = threading.Lock()
        #: (due_monotonic, job) pairs awaiting their backoff delay.
        self._delayed: List[Tuple[float, Any]] = []
        self._thread: threading.Thread = threading.Thread(
            target=self._loop, name="serve-watchdog", daemon=True)
        self.hangs_detected = 0
        self.forced_requeues = 0

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Delayed requeue (backoff)

    def schedule_requeue(self, job, delay: float) -> None:
        """Hold ``job`` (already transitioned back to QUEUED) for
        ``delay`` seconds, then force-push it into the pending queue."""
        if delay <= 0:
            self._server._admit_requeued(job)
            return
        with self._lock:
            self._delayed.append((time.monotonic() + delay, job))

    def drain_delayed(self) -> List[Any]:
        """Hand back every not-yet-due job (shutdown path — they must
        be canceled, not silently dropped)."""
        with self._lock:
            jobs = [job for _, job in self._delayed]
            self._delayed.clear()
        return jobs

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            delayed = len(self._delayed)
        return {
            "enabled": self.config.enabled,
            "hang_timeout": self.config.hang_timeout,
            "max_retries": self.config.max_retries,
            "hangs_detected": self.hangs_detected,
            "forced_requeues": self.forced_requeues,
            "delayed_requeues": delayed,
        }

    # ------------------------------------------------------------------
    # Loop

    def _loop(self) -> None:
        while not self._stop.wait(self.config.poll_interval):
            now = time.monotonic()
            self._release_due(now)
            if self.config.enabled:
                self._scan_running(now)

    def _release_due(self, now: float) -> None:
        due = []
        with self._lock:
            keep = []
            for item in self._delayed:
                (due if item[0] <= now else keep).append(item)
            self._delayed[:] = keep
        for _, job in due:
            self._server._admit_requeued(job)

    def _scan_running(self, now: float) -> None:
        for job in self._server._running_jobs():
            beat = job.last_heartbeat
            if beat is None or now - beat <= self.config.hang_timeout:
                continue
            if not job.abort_requested:
                # Step 1: cooperative — if the run ever polls the
                # abort hook again it aborts and self-requeues.
                job.abort_requested = True
                job.hang_detected_at = now
                self.hangs_detected += 1
                self._server._note_hang(job)
            elif job.hang_detected_at is not None \
                    and now - job.hang_detected_at > self.config.abort_grace:
                # Step 2: the worker never responded — presume it
                # wedged and take the job away from it.
                job.hang_detected_at = None
                self.forced_requeues += 1
                self._server._force_requeue(job)
