"""Always-on scheduler daemon: submit/status/cancel jobs over a socket.

The serve subsystem turns the batch experiment runner into a
long-running service (ROADMAP, PR 8): ``python -m repro serve`` hosts
a daemon that accepts newline-delimited JSON requests over a Unix or
TCP socket, schedules submitted scenarios through the one
``run(scenario)`` entry point via a bounded priority queue and a worker
pool, and answers ``status``/``result``/``cancel``/``history``/
``telemetry``/``shutdown`` verbs.  See DESIGN.md §6.7.

PR 9 makes the daemon durable (DESIGN.md §6.8): a write-ahead job
journal with crash recovery (``--journal`` / ``--recover``), submit
idempotency keys that survive restarts, and a worker watchdog that
detects hung jobs and requeues them with bounded retries.

* :mod:`repro.serve.protocol` — NDJSON framing, verbs, addresses.
* :mod:`repro.serve.jobs` — Job lifecycle + the bounded pending queue.
* :mod:`repro.serve.journal` — write-ahead log, snapshots, replay.
* :mod:`repro.serve.watchdog` — heartbeat hang detection + retries.
* :mod:`repro.serve.server` — the daemon (:class:`ServeServer`).
* :mod:`repro.serve.client` — :class:`ServeClient` library.
"""

from .client import ServeClient, ServeError
from .jobs import (
    CANCELED,
    COMPLETED,
    DISPATCHED,
    FAILED,
    INTERRUPTED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    LifecycleError,
    PendingQueue,
    QueueFull,
)
from .journal import KILL_POINTS, JobJournal, JournalError, atomic_write_json
from .protocol import DEFAULT_ADDRESS, MAX_LINE_BYTES, VERBS, ProtocolError
from .server import ServeConfig, ServeServer
from .watchdog import WatchdogConfig, WorkerWatchdog

__all__ = [
    "ServeServer",
    "ServeConfig",
    "ServeClient",
    "ServeError",
    "Job",
    "PendingQueue",
    "QueueFull",
    "LifecycleError",
    "JobJournal",
    "JournalError",
    "atomic_write_json",
    "KILL_POINTS",
    "WatchdogConfig",
    "WorkerWatchdog",
    "JOB_STATES",
    "TERMINAL_STATES",
    "QUEUED",
    "DISPATCHED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "CANCELED",
    "INTERRUPTED",
    "VERBS",
    "DEFAULT_ADDRESS",
    "MAX_LINE_BYTES",
    "ProtocolError",
]
