"""Wire protocol for the serve daemon: newline-delimited JSON.

One request per line, one (or more, for streaming verbs) response lines
back.  Requests are JSON objects with a ``verb`` field; responses are
JSON objects with ``ok`` (bool) plus either the verb's payload or an
``error`` object ``{"code", "message"}``.  The framing is deliberately
dumb — any language with a socket and a JSON parser is a client.

Robustness rules (tested in tests/test_serve.py):

* malformed JSON -> ``bad_request`` error, connection stays open;
* unknown verb -> ``unknown_verb`` error, connection stays open;
* a line longer than :data:`MAX_LINE_BYTES` -> ``oversized`` error,
  connection closed (the daemon will not buffer unbounded input);
* a client disconnecting mid-request is logged and dropped without
  affecting the daemon or other connections.

Addresses are strings: ``unix:/path/to.sock`` for Unix domain sockets
or ``tcp:HOST:PORT`` (plain ``HOST:PORT`` is accepted too).  See
DESIGN.md §6.7 for the full schema.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = [
    "MAX_LINE_BYTES",
    "DEFAULT_ADDRESS",
    "VERBS",
    "ProtocolError",
    "encode",
    "decode_request",
    "ok_response",
    "error_response",
    "parse_address",
    "format_address",
    "create_listener",
    "connect",
    "LineReader",
]

#: Hard bound on one request/response line (1 MiB).  Inputs past this
#: are rejected with an ``oversized`` error instead of buffered.
MAX_LINE_BYTES = 1 << 20

#: Where the CLI verbs look for a daemon when ``--address`` is omitted.
DEFAULT_ADDRESS = "unix:/tmp/repro-serve.sock"

#: Every verb the daemon understands.
VERBS = ("submit", "status", "result", "cancel", "history",
         "telemetry", "scenarios", "shutdown", "ping")


class ProtocolError(Exception):
    """A request the daemon rejects with a structured error response.

    ``details`` is an optional JSON-safe dict merged into the error
    object — e.g. ``queue_full`` carries ``queue_depth`` and
    ``retry_after_hint`` so clients can back off intelligently.
    """

    def __init__(self, code: str, message: str,
                 details: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.details = details or {}


def encode(payload: Dict[str, Any]) -> bytes:
    """One NDJSON frame: compact, key-sorted, newline-terminated."""
    return (json.dumps(payload, sort_keys=True, separators=(",", ":"),
                       default=float) + "\n").encode("utf-8")


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse one request line; raise :class:`ProtocolError` on garbage."""
    try:
        request = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad_request", f"malformed JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError("bad_request",
                            "request must be a JSON object with a 'verb'")
    verb = request.get("verb")
    if not isinstance(verb, str):
        raise ProtocolError("bad_request", "request is missing a 'verb'")
    if verb not in VERBS:
        raise ProtocolError(
            "unknown_verb",
            f"unknown verb {verb!r}; expected one of {', '.join(VERBS)}")
    return request


def ok_response(verb: str, **payload: Any) -> Dict[str, Any]:
    response = {"ok": True, "verb": verb}
    response.update(payload)
    return response


def error_response(code: str, message: str,
                   details: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    error = {"code": code, "message": message}
    if details:
        error.update(details)
    return {"ok": False, "error": error}


def parse_address(address: str) -> Tuple[str, Any]:
    """``unix:/path`` -> ("unix", path); ``tcp:host:port``/``host:port``
    -> ("tcp", (host, port))."""
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError(f"empty unix socket path in {address!r}")
        return "unix", path
    spec = address[len("tcp:"):] if address.startswith("tcp:") else address
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"bad address {address!r}; expected unix:/path or tcp:host:port")
    try:
        return "tcp", (host, int(port))
    except ValueError as exc:
        raise ValueError(f"bad port in address {address!r}") from exc


def format_address(family: str, target: Any) -> str:
    if family == "unix":
        return f"unix:{target}"
    host, port = target
    return f"tcp:{host}:{port}"


def create_listener(address: str, backlog: int = 16) -> Tuple[socket.socket, str]:
    """Bind+listen on ``address``; returns (socket, resolved address).

    TCP port 0 resolves to the ephemeral port actually bound — that is
    how tests and CI get collision-free addresses.
    """
    family, target = parse_address(address)
    if family == "unix":
        import os

        # A dead daemon leaves its socket file behind; binding over it
        # needs the unlink.  A *live* daemon is protected by connect():
        # callers who care race-check with ping first.
        try:
            os.unlink(target)
        except FileNotFoundError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(target)
    else:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(target)
        target = (target[0], listener.getsockname()[1])
    listener.listen(backlog)
    return listener, format_address(family, target)


def connect(address: str, timeout: Optional[float] = None) -> socket.socket:
    """Open a client connection to a daemon at ``address``."""
    family, target = parse_address(address)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(target)
    return sock


class LineReader:
    """Incremental newline framing over a stream socket with the
    :data:`MAX_LINE_BYTES` bound enforced."""

    def __init__(self, sock: socket.socket,
                 max_line: int = MAX_LINE_BYTES):
        self._sock = sock
        self._max_line = max_line
        self._buffer = bytearray()

    def readline(self) -> Optional[bytes]:
        """Next complete line (without the newline), or None on EOF.

        Raises :class:`ProtocolError` (code ``oversized``) when the
        peer sends more than ``max_line`` bytes without a newline.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[:newline + 1]
                return line
            if len(self._buffer) > self._max_line:
                raise ProtocolError(
                    "oversized",
                    f"request exceeds {self._max_line} bytes")
            chunk = self._sock.recv(65536)
            if not chunk:
                return None
            self._buffer.extend(chunk)

    def lines(self) -> Iterator[bytes]:
        while True:
            line = self.readline()
            if line is None:
                return
            if line.strip():
                yield line
