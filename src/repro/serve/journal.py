"""Write-ahead job journal for the serve daemon (DESIGN.md §6.8).

The journal is the daemon's durability spine: every job event is
appended as one NDJSON record to ``<path>`` *before* it is
acknowledged or acted on, and the daemon replays the file on startup
so a crash — up to and including ``kill -9`` — loses no job.  Records:

* ``{"type": "submit", "seq", "job", "spec", "priority", "key",
  "clock"}`` — a job was admitted (written durably before the submit
  response is sent, so an acknowledged job is always recoverable);
* ``{"type": "transition", "seq", "job", "state", "clock", "error",
  "attempt"}`` — a lifecycle move (terminal ones are fsynced, interior
  DISPATCHED/RUNNING ones ride the batch);
* ``{"type": "result", "seq", "job", "result_json", "events_processed",
  "sim_time"}`` — the *exact* ``run(scenario).to_json()`` byte string,
  embedded as a JSON string so replay restores it byte-for-byte;
* ``{"type": "reject", "seq"}`` — a ``queue_full`` shed (counter
  accounting only).

**Fsync batching.**  Appends buffer in the OS file object; a flush +
``os.fsync`` happens when ``durable=True`` is requested (submits,
results, terminal transitions) or every ``fsync_batch`` records,
whichever comes first.  Interior transitions are therefore cheap and
the recovery semantics absorb the window: a DISPATCHED/RUNNING record
that never hit disk just means the job replays as QUEUED, which the
``requeue`` policy re-runs deterministically anyway.

**Compaction.**  Once ``snapshot_every`` records accumulate, the
daemon writes a full-state snapshot to ``<path>.snapshot`` atomically
(temp file + ``os.replace`` — a crash mid-persist can never truncate
the previous snapshot) and rewrites the log (also via temp file +
``os.replace``) down to the records the snapshot does *not* cover.
Every record carries a monotonic ``seq`` and the snapshot stores
``last_seq``: the caller reads :attr:`JobJournal.last_seq` *before*
building the state payload and passes it as the compaction ``floor``,
so a record appended concurrently — journaled but absent from the
payload — has ``seq > floor`` and survives in the rewritten log
instead of being compacted away.  Replay skips records with ``seq <=
last_seq``, so a crash *between* the snapshot replace and the log
rewrite double-applies nothing.

**Torn tails.**  A crash mid-append can leave a final partial line.
:meth:`JobJournal.load` tolerates exactly that — an undecodable *last*
line is dropped (the record was never acknowledged); an undecodable
*interior* line raises :class:`JournalError` because it means real
corruption, not a crash.

**Chaos seams.**  When the ``REPRO_SERVE_KILL_AT`` environment
variable names an injection point (:data:`KILL_POINTS`), the daemon
SIGKILLs *itself* at that point — that is how the kill-9 chaos harness
(tests/test_serve_chaos.py, CI ``serve-recovery``) proves the recovery
invariants without any sleep-and-hope timing.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "JournalError",
    "JobJournal",
    "atomic_write_json",
    "KILL_POINTS",
    "maybe_kill",
]

#: SIGKILL injection points understood by the chaos harness.
KILL_POINTS = ("mid_enqueue", "mid_run", "mid_result_write",
               "mid_compaction")

_KILL_ENV = "REPRO_SERVE_KILL_AT"


def maybe_kill(point: str) -> None:
    """Chaos seam: SIGKILL this process iff ``REPRO_SERVE_KILL_AT``
    names ``point``.  A no-op in production (env var unset)."""
    if os.environ.get(_KILL_ENV) == point:
        os.kill(os.getpid(), signal.SIGKILL)


class JournalError(RuntimeError):
    """The journal or snapshot is corrupt beyond a torn tail."""


def atomic_write_json(path: str, payload: Any) -> None:
    """Write ``payload`` as JSON to ``path`` atomically: temp file in
    the same directory, flush + fsync, then ``os.replace``.  A crash at
    any instant leaves either the old file or the new one — never a
    truncated hybrid.  Used for journal snapshots and ``--history-out``.
    """
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, separators=(",", ":"),
                  default=float)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _encode(record: Dict[str, Any]) -> bytes:
    return (json.dumps(record, sort_keys=True, separators=(",", ":"),
                       default=float) + "\n").encode("utf-8")


class JobJournal:
    """Append-only NDJSON write-ahead log plus its compacted snapshot.

    Thread-safe; the daemon appends from connection handlers, workers,
    and the watchdog concurrently.
    """

    def __init__(self, path: str, *, fsync_batch: int = 8,
                 snapshot_every: int = 256, start_seq: int = 0):
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be >= 1")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.path = path
        self.snapshot_path = f"{path}.snapshot"
        self.fsync_batch = fsync_batch
        self.snapshot_every = snapshot_every
        self._lock = threading.Lock()
        self._fh = open(path, "ab")
        self._seq = start_seq
        self._unsynced = 0
        self._since_snapshot = 0
        self.records_appended = 0
        self.snapshots_written = 0
        self._kill_point = os.environ.get(_KILL_ENV)

    # ------------------------------------------------------------------
    # Appending

    def append(self, record: Dict[str, Any], durable: bool = False) -> int:
        """Append one record; returns its ``seq``.  ``durable=True``
        forces the write (and everything batched before it) to disk
        before returning — group commit, so one fsync covers the whole
        batch."""
        with self._lock:
            self._seq += 1
            record = dict(record)
            record["seq"] = self._seq
            data = _encode(record)
            if self._kill_point == "mid_result_write" \
                    and record.get("type") == "result":
                # Chaos: persist a torn half-record, then die.  Replay
                # must drop the partial tail and requeue the job.
                self._fh.write(data[:max(1, len(data) // 2)])
                self._fh.flush()
                os.fsync(self._fh.fileno())
                maybe_kill("mid_result_write")
            self._fh.write(data)
            self._unsynced += 1
            self.records_appended += 1
            self._since_snapshot += 1
            if durable or self._unsynced >= self.fsync_batch:
                self._sync_locked()
            return self._seq

    def flush(self) -> None:
        """Force everything appended so far to disk."""
        with self._lock:
            self._sync_locked()

    def _sync_locked(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._unsynced = 0

    @property
    def should_snapshot(self) -> bool:
        with self._lock:
            return self._since_snapshot >= self.snapshot_every

    @property
    def last_seq(self) -> int:
        """Highest sequence number appended so far.  Read this *before*
        building a snapshot payload and pass it to
        :meth:`write_snapshot` as ``floor``: any record appended while
        the payload is being built then has ``seq > floor`` and is
        preserved by the compaction instead of truncated."""
        with self._lock:
            return self._seq

    # ------------------------------------------------------------------
    # Compaction

    def write_snapshot(self, payload: Dict[str, Any],
                       floor: Optional[int] = None) -> None:
        """Persist the full daemon state atomically, then compact the
        log down to records with ``seq > floor``.

        ``payload`` is the server-built state dict; this adds
        ``last_seq = floor`` (defaulting to the current sequence
        number — only safe when the caller serialized the payload
        build against appends).  Records newer than ``floor`` were
        journaled while the payload was being built and are absent
        from it, so they are *rewritten into the fresh log* rather
        than truncated — an acknowledged record can never be compacted
        away.  Crash-safe at every instant: before the snapshot
        ``os.replace`` the old snapshot + full log replay; after it
        the new snapshot's ``last_seq`` makes covered log records
        no-ops; the log rewrite itself goes through a temp file +
        ``os.replace``, so the log is always either the old one or the
        compacted one."""
        with self._lock:
            if floor is None:
                floor = self._seq
            payload = dict(payload)
            payload["version"] = 1
            payload["last_seq"] = floor
            self._sync_locked()
            survivors = self._tail_after_locked(floor)
            atomic_write_json(self.snapshot_path, payload)
            maybe_kill("mid_compaction")
            self._fh.close()
            tmp = f"{self.path}.compact"
            with open(tmp, "wb") as fh:
                for line in survivors:
                    fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._fh = open(self.path, "ab")
            self._unsynced = 0
            self._since_snapshot = len(survivors)
            self.snapshots_written += 1

    def _tail_after_locked(self, floor: int) -> List[bytes]:
        """Raw journal lines with ``seq > floor`` (lock held, file
        synced).  A torn tail left by a pre-boot crash was never
        acknowledged and is dropped, matching :meth:`load`."""
        try:
            with open(self.path, "rb") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return []  # log deleted externally: nothing to preserve
        survivors: List[bytes] = []
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record.get("seq", 0) > floor:
                survivors.append(line + b"\n")
        return survivors

    def close(self) -> None:
        with self._lock:
            try:
                self._sync_locked()
            finally:
                self._fh.close()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "path": self.path,
                "last_seq": self._seq,
                "records_appended": self.records_appended,
                "records_since_snapshot": self._since_snapshot,
                "snapshots_written": self.snapshots_written,
                "fsync_batch": self.fsync_batch,
                "snapshot_every": self.snapshot_every,
            }

    # ------------------------------------------------------------------
    # Loading / replay

    @staticmethod
    def load(path: str) -> Tuple[Optional[Dict[str, Any]],
                                 List[Dict[str, Any]], int]:
        """Read ``(snapshot, records, last_seq)`` for ``path``.

        ``snapshot`` is None when no snapshot exists; ``records`` are
        the journal records with ``seq`` *greater than* the snapshot's
        ``last_seq`` (stale pre-compaction records are skipped — that
        is what makes a crash mid-compaction replay-idempotent);
        ``last_seq`` is the highest sequence number seen anywhere, the
        ``start_seq`` a fresh :class:`JobJournal` must resume from.
        """
        snapshot: Optional[Dict[str, Any]] = None
        snapshot_path = f"{path}.snapshot"
        if os.path.exists(snapshot_path):
            try:
                with open(snapshot_path, "r", encoding="utf-8") as fh:
                    snapshot = json.load(fh)
            except ValueError as exc:
                raise JournalError(
                    f"corrupt journal snapshot {snapshot_path}: {exc}"
                ) from exc
        floor = snapshot["last_seq"] if snapshot else 0
        last_seq = floor
        records: List[Dict[str, Any]] = []
        if os.path.exists(path):
            with open(path, "rb") as fh:
                raw = fh.read()
            lines = raw.split(b"\n")
            # A complete final record ends with a newline, so the last
            # split element is empty; anything else is a torn tail.
            torn = lines.pop() if lines else b""
            for index, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise JournalError(
                        f"corrupt journal record at line {index + 1} "
                        f"of {path}: {exc}") from exc
                seq = record.get("seq", 0)
                last_seq = max(last_seq, seq)
                if seq > floor:
                    records.append(record)
            if torn.strip():
                try:
                    record = json.loads(torn)
                except ValueError:
                    pass  # torn tail from a crash mid-append: dropped
                else:
                    # Complete JSON that merely lost its newline.
                    seq = record.get("seq", 0)
                    last_seq = max(last_seq, seq)
                    if seq > floor:
                        records.append(record)
        return snapshot, records, last_seq

    @staticmethod
    def replay(snapshot: Optional[Dict[str, Any]],
               records: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Fold ``(snapshot, records)`` into recovered daemon state::

            {"jobs": {job_id: record_dict}, "order": [job_id...],
             "history": [...], "idempotency": {key: job_id},
             "counters": {...}, "next_job": int}

        Each job record dict matches :meth:`repro.serve.jobs.Job.restore`
        input.  ``order`` preserves submission order for deterministic
        re-admission.
        """
        jobs: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []
        history: List[str] = []
        idempotency: Dict[str, str] = {}
        counters: Dict[str, int] = {}
        next_job = 0
        if snapshot is not None:
            for record in snapshot.get("jobs", []):
                jobs[record["id"]] = dict(record)
                order.append(record["id"])
            history = list(snapshot.get("history", []))
            idempotency = dict(snapshot.get("idempotency", {}))
            counters = dict(snapshot.get("counters", {}))
            next_job = snapshot.get("next_job", 0)
        for record in records:
            kind = record.get("type")
            if kind == "submit":
                job_id = record["job"]
                if job_id in jobs:
                    # Already captured by the snapshot (the record was
                    # appended while the snapshot payload was built and
                    # preserved past compaction): re-applying would
                    # duplicate the job in ``order`` and re-run it.
                    continue
                jobs[job_id] = {
                    "id": job_id,
                    "state": "QUEUED",
                    "spec": record.get("spec") or {},
                    "priority": record.get("priority", 0),
                    "key": record.get("key"),
                    "attempt": 1,
                    "error": None,
                    "result_json": None,
                    "events_processed": None,
                    "sim_time": None,
                    "transitions": [["QUEUED", record.get("clock", 0.0)]],
                }
                order.append(job_id)
                if record.get("key"):
                    idempotency[record["key"]] = job_id
                counters["submitted"] = counters.get("submitted", 0) + 1
                next_job = max(next_job, _job_number(job_id))
            elif kind == "transition":
                job = jobs.get(record["job"])
                if job is None:
                    continue  # transition for a compacted-away job
                state = record["state"]
                entry = [state, record.get("clock", 0.0)]
                if job["state"] == state and job["transitions"] \
                        and job["transitions"][-1] == entry:
                    # The snapshot already reflects this exact
                    # transition (record preserved past compaction):
                    # skip it so counters and the transition history
                    # are not double-applied.
                    continue
                job["state"] = state
                job["attempt"] = record.get("attempt", job.get("attempt", 1))
                if record.get("error") is not None:
                    job["error"] = record["error"]
                job["transitions"].append([state, record.get("clock", 0.0)])
                if state == "DISPATCHED":
                    counters["dispatched"] = counters.get("dispatched", 0) + 1
                elif state == "QUEUED":
                    # Submit records carry the initial QUEUED; a QUEUED
                    # *transition* is always a requeue.
                    counters["requeued"] = counters.get("requeued", 0) + 1
                if state in ("COMPLETED", "FAILED", "CANCELED",
                             "INTERRUPTED"):
                    if record["job"] not in history:
                        history.append(record["job"])
                    counters[state.lower()] = \
                        counters.get(state.lower(), 0) + 1
            elif kind == "result":
                job = jobs.get(record["job"])
                if job is None:
                    continue
                job["result_json"] = record.get("result_json")
                job["events_processed"] = record.get("events_processed")
                job["sim_time"] = record.get("sim_time")
            elif kind == "reject":
                counters["rejected"] = counters.get("rejected", 0) + 1
        # A journaled result only counts once its COMPLETED transition
        # also made it to disk — otherwise the run is re-done (and the
        # determinism contract makes the re-run byte-identical anyway).
        for job in jobs.values():
            if job["state"] != "COMPLETED":
                job["result_json"] = None
        return {"jobs": jobs, "order": order, "history": history,
                "idempotency": idempotency, "counters": counters,
                "next_job": next_job}


def _job_number(job_id: str) -> int:
    try:
        return int(job_id.rsplit("-", 1)[-1])
    except ValueError:
        return 0
