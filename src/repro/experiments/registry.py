"""Experiment catalog: config builders for every paper scenario.

Each builder returns an :class:`ExperimentConfig` for one (workload
pair, backend) cell of a figure.  Rates come from Table 3; batch sizes
from Table 1 (via the model zoo defaults).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.workloads.rates import rps_for

from .config import ExperimentConfig, JobSpec

__all__ = [
    "inf_train_config",
    "train_train_config",
    "inf_inf_config",
    "multi_client_config",
    "solo_inference_config",
]

DEFAULT_DURATION = 4.0
DEFAULT_WARMUP = 0.5


def inf_train_config(hp_model: str, be_model: str, backend: str,
                     arrivals: str = "poisson",
                     duration: float = DEFAULT_DURATION,
                     seed: int = 0, **kwargs) -> ExperimentConfig:
    """§6.2.1: HP latency-sensitive inference + BE training."""
    rps = rps_for(hp_model, "inf_train_poisson")
    hp = JobSpec(model=hp_model, kind="inference", high_priority=True,
                 arrivals=arrivals, rps=rps if arrivals == "poisson" else 0.0)
    be = JobSpec(model=be_model, kind="training", high_priority=False)
    return ExperimentConfig(jobs=[hp, be], backend=backend, duration=duration,
                            warmup=DEFAULT_WARMUP, seed=seed, **kwargs)


def train_train_config(hp_model: str, be_model: str, backend: str,
                       duration: float = DEFAULT_DURATION,
                       seed: int = 0, **kwargs) -> ExperimentConfig:
    """§6.2.2: HP training + BE training, both closed loop."""
    hp = JobSpec(model=hp_model, kind="training", high_priority=True)
    be = JobSpec(model=be_model, kind="training", high_priority=False)
    return ExperimentConfig(jobs=[hp, be], backend=backend, duration=duration,
                            warmup=DEFAULT_WARMUP, seed=seed, **kwargs)


def inf_inf_config(hp_model: str, be_model: str, backend: str,
                   arrivals: str = "apollo",
                   duration: float = DEFAULT_DURATION,
                   seed: int = 0, **kwargs) -> ExperimentConfig:
    """§6.2.3: HP inference + BE offline inference.

    Apollo scenario: HP replays the (synthetic) Apollo trace, BE uses
    uniform arrivals at the Table 3 uniform rate.  Poisson scenario:
    both Poisson at the Table 3 Poisson rates.
    """
    if arrivals == "apollo":
        hp = JobSpec(model=hp_model, kind="inference", high_priority=True,
                     arrivals="apollo")
        be = JobSpec(model=be_model, kind="inference", high_priority=False,
                     arrivals="uniform", rps=rps_for(be_model, "inf_inf_uniform"))
    elif arrivals == "poisson":
        hp = JobSpec(model=hp_model, kind="inference", high_priority=True,
                     arrivals="poisson", rps=rps_for(hp_model, "inf_inf_poisson"))
        be = JobSpec(model=be_model, kind="inference", high_priority=False,
                     arrivals="poisson", rps=rps_for(be_model, "inf_inf_poisson"))
    else:
        raise ValueError(f"inf-inf arrivals must be apollo|poisson, got {arrivals!r}")
    return ExperimentConfig(jobs=[hp, be], backend=backend, duration=duration,
                            warmup=DEFAULT_WARMUP, seed=seed, **kwargs)


def multi_client_config(hp_model: str, be_models: Sequence[str], backend: str,
                        device: str = "A100-40GB",
                        duration: float = DEFAULT_DURATION,
                        seed: int = 0, **kwargs) -> ExperimentConfig:
    """§6.3: one HP inference client + N BE inference clients (Figure 13)."""
    jobs: List[JobSpec] = [
        JobSpec(model=hp_model, kind="inference", high_priority=True,
                arrivals="poisson", rps=rps_for(hp_model, "inf_inf_poisson"))
    ]
    for index, model in enumerate(be_models):
        jobs.append(
            JobSpec(model=model, kind="inference", high_priority=False,
                    arrivals="poisson", rps=rps_for(model, "inf_inf_poisson"),
                    name=f"be{index}-{model}")
        )
    return ExperimentConfig(jobs=jobs, backend=backend, device=device,
                            duration=duration, warmup=DEFAULT_WARMUP,
                            seed=seed, **kwargs)


def solo_inference_config(model: str, rps: Optional[float] = None,
                          arrivals: str = "uniform",
                          duration: float = DEFAULT_DURATION,
                          seed: int = 0, **kwargs) -> ExperimentConfig:
    """A single inference job on a dedicated GPU (Figures 8a/9a)."""
    job = JobSpec(model=model, kind="inference", high_priority=True,
                  arrivals=arrivals,
                  rps=rps if rps is not None else 0.0)
    return ExperimentConfig(jobs=[job], backend="ideal", duration=duration,
                            warmup=DEFAULT_WARMUP, seed=seed, **kwargs)
