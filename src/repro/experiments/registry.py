"""Experiment catalog: config builders and the named-scenario registry.

Each config builder returns an :class:`ExperimentConfig` for one
(workload pair, backend) cell of a figure.  Rates come from Table 3;
batch sizes from Table 1 (via the model zoo defaults).

The bottom half of the module is the named-:class:`Scenario` catalog:
``make_scenario(name, seed=..., duration=..., **overrides)`` builds a
complete scenario description the CLI, the sweep engine, and the bench
harness all share.  Names ending in ``_ref`` are the pinned benchmark
references (fixed workloads and horizons, see DESIGN.md §6.4).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.workloads.rates import rps_for

from .config import ExperimentConfig, JobSpec
from .scenario import Scenario

__all__ = [
    "inf_train_config",
    "train_train_config",
    "inf_inf_config",
    "multi_client_config",
    "solo_inference_config",
    "SCENARIOS",
    "make_scenario",
    "scenario_names",
    "scenario_catalog",
]

DEFAULT_DURATION = 4.0
DEFAULT_WARMUP = 0.5


def inf_train_config(hp_model: str, be_model: str, backend: str,
                     arrivals: str = "poisson",
                     duration: float = DEFAULT_DURATION,
                     seed: int = 0, **kwargs) -> ExperimentConfig:
    """§6.2.1: HP latency-sensitive inference + BE training."""
    rps = rps_for(hp_model, "inf_train_poisson")
    hp = JobSpec(model=hp_model, kind="inference", high_priority=True,
                 arrivals=arrivals, rps=rps if arrivals == "poisson" else 0.0)
    be = JobSpec(model=be_model, kind="training", high_priority=False)
    return ExperimentConfig(jobs=[hp, be], backend=backend, duration=duration,
                            warmup=DEFAULT_WARMUP, seed=seed, **kwargs)


def train_train_config(hp_model: str, be_model: str, backend: str,
                       duration: float = DEFAULT_DURATION,
                       seed: int = 0, **kwargs) -> ExperimentConfig:
    """§6.2.2: HP training + BE training, both closed loop."""
    hp = JobSpec(model=hp_model, kind="training", high_priority=True)
    be = JobSpec(model=be_model, kind="training", high_priority=False)
    return ExperimentConfig(jobs=[hp, be], backend=backend, duration=duration,
                            warmup=DEFAULT_WARMUP, seed=seed, **kwargs)


def inf_inf_config(hp_model: str, be_model: str, backend: str,
                   arrivals: str = "apollo",
                   duration: float = DEFAULT_DURATION,
                   seed: int = 0, **kwargs) -> ExperimentConfig:
    """§6.2.3: HP inference + BE offline inference.

    Apollo scenario: HP replays the (synthetic) Apollo trace, BE uses
    uniform arrivals at the Table 3 uniform rate.  Poisson scenario:
    both Poisson at the Table 3 Poisson rates.
    """
    if arrivals == "apollo":
        hp = JobSpec(model=hp_model, kind="inference", high_priority=True,
                     arrivals="apollo")
        be = JobSpec(model=be_model, kind="inference", high_priority=False,
                     arrivals="uniform", rps=rps_for(be_model, "inf_inf_uniform"))
    elif arrivals == "poisson":
        hp = JobSpec(model=hp_model, kind="inference", high_priority=True,
                     arrivals="poisson", rps=rps_for(hp_model, "inf_inf_poisson"))
        be = JobSpec(model=be_model, kind="inference", high_priority=False,
                     arrivals="poisson", rps=rps_for(be_model, "inf_inf_poisson"))
    else:
        raise ValueError(f"inf-inf arrivals must be apollo|poisson, got {arrivals!r}")
    return ExperimentConfig(jobs=[hp, be], backend=backend, duration=duration,
                            warmup=DEFAULT_WARMUP, seed=seed, **kwargs)


def multi_client_config(hp_model: str, be_models: Sequence[str], backend: str,
                        device: str = "A100-40GB",
                        duration: float = DEFAULT_DURATION,
                        seed: int = 0, **kwargs) -> ExperimentConfig:
    """§6.3: one HP inference client + N BE inference clients (Figure 13)."""
    jobs: List[JobSpec] = [
        JobSpec(model=hp_model, kind="inference", high_priority=True,
                arrivals="poisson", rps=rps_for(hp_model, "inf_inf_poisson"))
    ]
    for index, model in enumerate(be_models):
        jobs.append(
            JobSpec(model=model, kind="inference", high_priority=False,
                    arrivals="poisson", rps=rps_for(model, "inf_inf_poisson"),
                    name=f"be{index}-{model}")
        )
    return ExperimentConfig(jobs=jobs, backend=backend, device=device,
                            duration=duration, warmup=DEFAULT_WARMUP,
                            seed=seed, **kwargs)


def solo_inference_config(model: str, rps: Optional[float] = None,
                          arrivals: str = "uniform",
                          duration: float = DEFAULT_DURATION,
                          seed: int = 0, **kwargs) -> ExperimentConfig:
    """A single inference job on a dedicated GPU (Figures 8a/9a)."""
    job = JobSpec(model=model, kind="inference", high_priority=True,
                  arrivals=arrivals,
                  rps=rps if rps is not None else 0.0)
    return ExperimentConfig(jobs=[job], backend="ideal", duration=duration,
                            warmup=DEFAULT_WARMUP, seed=seed, **kwargs)


# ---------------------------------------------------------------------------
# Named-scenario catalog (the Scenario API's registry).

def _experiment_scenario(name: str, maker: Callable,
                         defaults: Dict) -> Callable[..., Scenario]:
    def build(seed: int = 0, duration: Optional[float] = None,
              **overrides) -> Scenario:
        kwargs = dict(defaults)
        kwargs.update(overrides)
        hp = kwargs.pop("hp")
        be = kwargs.pop("be")
        backend = kwargs.pop("backend")
        if duration is not None:
            kwargs["duration"] = duration
        config = maker(hp, be, backend, seed=seed, **kwargs)
        return Scenario(kind="experiment", name=name, experiment=config)

    return build


def _params_scenario(name: str, kind: str,
                     defaults: Dict) -> Callable[..., Scenario]:
    def build(seed: int = 0, duration: Optional[float] = None,
              **overrides) -> Scenario:
        params = dict(defaults)
        params.update(overrides)
        params["seed"] = seed
        if duration is not None:
            params["duration"] = duration
        return Scenario(kind=kind, name=name, params=params)

    return build


#: name -> builder(seed=..., duration=..., **overrides) -> Scenario.
#: The ``*_ref`` entries are the benchmark references: their workloads
#: and horizons are pinned so ops/sec numbers stay comparable across
#: commits (DESIGN.md §6.4).
SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "inf-train": _experiment_scenario(
        "inf-train", inf_train_config,
        {"hp": "resnet50", "be": "mobilenet_v2", "backend": "orion"}),
    "train-train": _experiment_scenario(
        "train-train", train_train_config,
        {"hp": "resnet50", "be": "mobilenet_v2", "backend": "orion"}),
    "inf-inf": _experiment_scenario(
        "inf-inf", inf_inf_config,
        {"hp": "resnet101", "be": "resnet50", "backend": "orion"}),
    "overload": _params_scenario("overload", "overload", {}),
    "faults": _params_scenario("faults", "faults", {}),
    "fleet": _params_scenario("fleet", "fleet", {}),
    "llm": _params_scenario("llm", "llm", {}),
    # Self-healing fleet: adversarial initial packing, measured-
    # interference rebalancing on, faults firing while tenants move.
    "fleet_rebalance": _params_scenario(
        "fleet_rebalance", "fleet",
        {"duration": 0.3, "num_gpus": 8, "crashes": 1, "degrades": 1,
         "placement": "adversarial", "rebalance": True,
         "be_tenants": 6, "warmup": 0.1}),
    # Benchmark references (pinned workloads/horizons).
    "overload_ref": _params_scenario(
        "overload_ref", "overload", {"duration": 0.4}),
    "llm_ref": _params_scenario(
        "llm_ref", "llm",
        {"duration": 0.4, "request_rate": 80.0, "max_batch": 8,
         "be_clients": 1, "warmup": 0.05}),
    "fleet_ref": _params_scenario(
        "fleet_ref", "fleet",
        {"duration": 0.15, "num_gpus": 8, "crashes": 1, "degrades": 1}),
    "inf_train_ref": _experiment_scenario(
        "inf_train_ref", inf_train_config,
        {"hp": "resnet50", "be": "mobilenet_v2", "backend": "orion",
         "duration": 0.6}),
    "train_train_ref": _experiment_scenario(
        "train_train_ref", train_train_config,
        {"hp": "resnet50", "be": "mobilenet_v2", "backend": "orion",
         "duration": 0.6}),
}


def make_scenario(name: str, seed: int = 0,
                  duration: Optional[float] = None, **overrides) -> Scenario:
    """Build a named :class:`Scenario`, applying per-call overrides.

    ``seed``/``duration`` apply uniformly to every scenario family;
    remaining keyword overrides go to the family's config surface
    (``ExperimentConfig`` builder kwargs for experiment scenarios,
    implementation kwargs for overload/faults scenarios).
    """
    builder = SCENARIOS.get(name)
    if builder is None:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"known: {', '.join(sorted(SCENARIOS))}")
    return builder(seed=seed, duration=duration, **overrides)


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def scenario_catalog() -> Dict[str, Dict]:
    """JSON-safe description of every named scenario: name -> ``{kind,
    params}``.

    Built by instantiating each catalog entry at its defaults (cheap:
    nothing runs), so the summary always matches what a defaults-only
    ``make_scenario(name)`` would execute.  Shared by ``repro
    scenarios`` and the serve daemon's ``scenarios`` verb — the list of
    valid submit targets.
    """
    catalog: Dict[str, Dict] = {}
    for name in scenario_names():
        scenario = SCENARIOS[name]()
        if scenario.kind == "experiment":
            cfg = scenario.experiment
            params = {
                "backend": cfg.backend,
                "device": cfg.device,
                "duration": cfg.duration,
                "jobs": [
                    f"{'hp' if job.high_priority else 'be'}:"
                    f"{job.model}:{job.kind}"
                    for job in cfg.jobs
                ],
            }
        else:
            params = {k: v for k, v in sorted(scenario.params.items())
                      if k != "seed"}
        catalog[name] = {"kind": scenario.kind, "params": params}
    return catalog
