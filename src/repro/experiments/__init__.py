"""Experiment harness: configs, runner, catalog, table formatting."""

from .config import ExperimentConfig, JobSpec
from .registry import (
    inf_inf_config,
    inf_train_config,
    multi_client_config,
    solo_inference_config,
    train_train_config,
)
from .overload import OverloadResult, run_overload_scenario
from .registry import SCENARIOS, make_scenario, scenario_names
from .runner import (
    ExperimentResult,
    JobResult,
    get_profile,
    run_experiment,
    solo_latency_summary,
    solo_throughput,
)
from .scenario import Scenario, ScenarioResult
from .scenario import run as run_scenario
from .sweep import run_sweep, sweep_to_json
from .tables import format_series, format_table, ratio

__all__ = [
    "ExperimentConfig",
    "JobSpec",
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "SCENARIOS",
    "make_scenario",
    "scenario_names",
    "run_sweep",
    "sweep_to_json",
    "run_experiment",
    "ExperimentResult",
    "JobResult",
    "get_profile",
    "solo_throughput",
    "solo_latency_summary",
    "run_overload_scenario",
    "OverloadResult",
    "inf_train_config",
    "train_train_config",
    "inf_inf_config",
    "multi_client_config",
    "solo_inference_config",
    "format_table",
    "format_series",
    "ratio",
]
