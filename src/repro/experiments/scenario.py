"""Unified Scenario API: one description, one entry point, one result.

Historically each scenario family grew its own entry point with its own
keyword surface: ``run_experiment(ExperimentConfig)`` for collocation
experiments, ``run_overload_scenario(**kwargs)`` for the overload-
protection demo, ``run_fault_scenario(**kwargs)`` for fault injection,
plus ad-hoc keyword plumbing in the trace CLI.  A :class:`Scenario`
subsumes all of them: ``kind`` selects the family, ``experiment``
carries the full :class:`~repro.experiments.config.ExperimentConfig`
for collocation runs, and ``params`` carries the keyword surface of the
overload/faults scenarios verbatim.

``run(scenario)`` executes any of them and returns a
:class:`ScenarioResult` wrapping the family-specific result object plus
uniform accounting (simulator events processed, simulated seconds,
wall-clock seconds).  ``ScenarioResult.canonical()`` renders the
deterministic subset — everything except wall-clock — as plain data, so
equal (scenario, seed) cells produce byte-identical JSON no matter
where or in which process they ran: the property the sweep engine's
merge step relies on, and the contract the deprecation-shim tests
assert.

Named scenarios (the catalog the CLI, sweep, and bench share) live in
:mod:`repro.experiments.registry` as ``make_scenario(name, ...)``.
The legacy entry points survive as thin shims that emit a
``FutureWarning`` and delegate here; see DESIGN.md §6.4 (removal
schedule in §6.9).

Params-kind scenarios are validated at construction against the typed
dataclasses in :mod:`repro.experiments.params`: an unknown or
out-of-range knob raises ``ValueError`` from ``Scenario(...)`` itself,
not minutes later inside a sweep worker.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from .config import ExperimentConfig
from .params import validate_params

__all__ = ["Scenario", "ScenarioResult", "run", "SCENARIO_KINDS"]

SCENARIO_KINDS = ("experiment", "overload", "faults", "fleet", "llm")


@dataclass(frozen=True)
class Scenario:
    """A complete, self-contained description of one simulation run.

    ``kind``
        Scenario family: ``"experiment"`` (collocation experiment),
        ``"overload"`` (overload-protection scenario), ``"faults"``
        (fault-injection scenario), ``"fleet"`` (multi-GPU resilience
        fleet), or ``"llm"`` (continuous-batching LLM serving).
    ``name``
        Display/registry name; defaults to ``kind``.
    ``experiment``
        The :class:`ExperimentConfig` payload — required for (and
        exclusive to) ``kind="experiment"``.
    ``params``
        Keyword arguments for the params-kind implementations,
        validated at construction against the kind's typed surface
        (:mod:`repro.experiments.params`) and passed through verbatim.
    """

    kind: str
    name: str = ""
    experiment: Optional[ExperimentConfig] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r}; "
                f"expected one of {', '.join(SCENARIO_KINDS)}")
        if self.kind == "experiment":
            if self.experiment is None:
                raise ValueError(
                    "kind='experiment' requires an ExperimentConfig payload")
        elif self.experiment is not None:
            raise ValueError(
                f"kind={self.kind!r} is configured via params, "
                "not an ExperimentConfig")
        else:
            validate_params(self.kind, self.params)
        object.__setattr__(self, "params", dict(self.params))
        if not self.name:
            object.__setattr__(self, "name", self.kind)

    @property
    def seed(self) -> int:
        if self.kind == "experiment":
            return self.experiment.seed
        return int(self.params.get("seed", 0))

    @property
    def duration(self) -> Optional[float]:
        """Simulated horizon; None means the implementation's default."""
        if self.kind == "experiment":
            return self.experiment.duration
        value = self.params.get("duration")
        return None if value is None else float(value)

    def describe(self) -> str:
        if self.kind == "experiment":
            cfg = self.experiment
            jobs = "+".join(j.model for j in cfg.jobs)
            return (f"{self.name}: {cfg.backend} {jobs} "
                    f"seed={cfg.seed} duration={cfg.duration:g}s")
        extras = {k: v for k, v in sorted(self.params.items())
                  if k not in ("seed", "duration")}
        dur = "default" if self.duration is None else f"{self.duration:g}s"
        return (f"{self.name}: {self.kind} seed={self.seed} "
                f"duration={dur} {extras}" if extras else
                f"{self.name}: {self.kind} seed={self.seed} duration={dur}")


@dataclass
class ScenarioResult:
    """Uniform wrapper around one scenario run.

    ``result`` is the family-specific object (``ExperimentResult``,
    ``OverloadResult``, or ``FaultScenarioResult``) — everything the
    legacy entry points returned is still reachable.  The wrapper adds
    the accounting every caller (bench, sweep, CLI) needs without
    re-deriving it: simulator events processed, simulated seconds, and
    wall-clock seconds.  Wall-clock is deliberately excluded from
    :meth:`canonical` so same-seed runs serialize byte-identically.
    """

    scenario: Scenario
    result: Any
    events_processed: int
    sim_time: float
    wall_time: float

    @property
    def ops_per_sec(self) -> float:
        """Simulator events processed per wall-clock second."""
        return self.events_processed / self.wall_time if self.wall_time > 0 \
            else 0.0

    def canonical(self) -> Dict[str, Any]:
        """Deterministic plain-data rendering (wall-clock excluded)."""
        return {
            "kind": self.scenario.kind,
            "name": self.scenario.name,
            "seed": self.scenario.seed,
            "events_processed": self.events_processed,
            "sim_time": self.sim_time,
            "result": _CANONICALIZERS[self.scenario.kind](self.result),
        }

    def to_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True,
                          separators=(",", ":"), default=float)


def run(scenario: Scenario) -> ScenarioResult:
    """Execute any :class:`Scenario` and wrap its outcome.

    The family implementations are imported lazily so the deprecation
    shims in their modules can in turn delegate here without an import
    cycle.
    """
    start = time.perf_counter()
    if scenario.kind == "experiment":
        from .runner import _run_experiment

        result = _run_experiment(scenario.experiment)
    elif scenario.kind == "overload":
        from .overload import _run_overload_scenario

        result = _run_overload_scenario(**scenario.params)
    elif scenario.kind == "fleet":
        from repro.cluster.fleet import _run_fleet_scenario

        result = _run_fleet_scenario(**scenario.params)
    elif scenario.kind == "llm":
        from repro.workloads.llmserve import _run_llm_scenario

        result = _run_llm_scenario(**scenario.params)
    else:
        from repro.faults.scenario import _run_fault_scenario

        result = _run_fault_scenario(**scenario.params)
    wall = time.perf_counter() - start
    return ScenarioResult(scenario=scenario, result=result,
                          events_processed=result.events_processed,
                          sim_time=result.sim_time, wall_time=wall)


# ---------------------------------------------------------------------------
# Canonicalization: family result objects -> deterministic plain data.

def _canon_records(stats) -> list:
    return [[r.arrival, r.start, r.end] for r in stats.records]


def _canon_stats(stats) -> dict:
    return {
        "records": _canon_records(stats),
        "dropped": stats.dropped,
        "failed": stats.failed,
        "restarts": stats.restarts,
        "shed": stats.shed,
    }


def _canon_latency(summary) -> dict:
    return {
        "count": summary.count,
        "mean": summary.mean,
        "p50": summary.p50,
        "p95": summary.p95,
        "p99": summary.p99,
        "max": summary.max,
    }


def _canon_experiment(result) -> dict:
    config = result.config
    return {
        "backend": config.backend,
        "device": config.device,
        "duration": config.duration,
        "warmup": config.warmup,
        "jobs": {
            name: {
                "high_priority": job.high_priority,
                "latency": _canon_latency(job.latency),
                "throughput": job.throughput,
                "stats": _canon_stats(job.stats),
            }
            for name, job in sorted(result.jobs.items())
        },
        "backend_stats": result.backend_stats,
    }


def _canon_overload(result) -> dict:
    return {
        "capacity": result.capacity,
        "solo_latency": result.solo_latency,
        "slo": result.slo,
        "hp_latency": _canon_latency(result.hp_latency),
        "jobs": {name: _canon_stats(stats)
                 for name, stats in sorted(result.jobs.items())},
        "shed": result.total_shed(),
        "backend_stats": result.backend_stats,
        "queue_telemetry": result.queue_telemetry,
        "guard_actions": result.guard_actions,
        "guard_summary": result.guard_summary,
        "ledger": json.loads(result.ledger.to_json()),
    }


def _canon_faults(result) -> dict:
    return {
        "plan": [event.describe() for event in result.plan],
        "hp_latency": _canon_latency(result.hp_latency),
        "jobs": {name: _canon_stats(stats)
                 for name, stats in sorted(result.jobs.items())},
        "backend_stats": result.backend_stats,
        "ledger": json.loads(result.ledger.to_json()),
    }


def _canon_fleet(result) -> dict:
    return {
        "num_gpus": result.num_gpus,
        "backend": result.backend,
        "plan": [event.describe() for event in result.plan],
        "hp_latency": _canon_latency(result.hp_latency),
        "jobs": {name: _canon_stats(stats)
                 for name, stats in sorted(result.jobs.items())},
        "report": result.report,
        "routing": result.routing,
        "migration": result.migration,
        "ledger": json.loads(result.ledger.to_json()),
    }


def _canon_llm(result) -> dict:
    return {
        "model": result.model,
        "backend": result.backend,
        "requests": {
            "arrived": result.requests_arrived,
            "completed": result.requests_completed,
            "failed": result.requests_failed,
        },
        "ttft": _canon_latency(result.ttft),
        "tpot": _canon_latency(result.tpot),
        "ttft_slo": result.ttft_slo,
        "prefill_reference": result.prefill_reference,
        "decode_tokens_per_sec": result.decode_tokens_per_sec,
        "total_tokens": result.total_tokens,
        "records": [
            [r.req_id, r.arrival, r.prompt_tokens, r.output_tokens,
             r.admitted, r.first_token, r.end, r.evictions,
             int(r.failed)]
            for r in result.records
        ],
        "admission_log": list(result.admission_log),
        "kv": dict(result.kv),
        "jobs": {name: _canon_stats(stats)
                 for name, stats in sorted(result.jobs.items())},
        "backend_stats": result.backend_stats,
        "ledger": json.loads(result.ledger.to_json()),
    }


_CANONICALIZERS = {
    "experiment": _canon_experiment,
    "overload": _canon_overload,
    "faults": _canon_faults,
    "fleet": _canon_fleet,
    "llm": _canon_llm,
}
