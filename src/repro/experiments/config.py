"""Experiment configuration records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.telemetry.tracer import TelemetryConfig

__all__ = ["JobSpec", "ExperimentConfig"]


@dataclass(frozen=True)
class JobSpec:
    """One client job in a collocation experiment."""

    model: str
    kind: str  # "inference" | "training"
    high_priority: bool = False
    arrivals: str = "closed"  # closed | uniform | poisson | apollo
    rps: float = 0.0
    batch_size: int = 0  # 0 -> the paper's Table 1 default
    name: str = ""

    def __post_init__(self):
        if self.kind not in ("inference", "training"):
            raise ValueError(f"bad job kind {self.kind!r}")
        if self.arrivals not in ("closed", "uniform", "poisson", "apollo"):
            raise ValueError(f"bad arrival kind {self.arrivals!r}")
        if self.arrivals in ("uniform", "poisson") and self.rps <= 0:
            raise ValueError(f"{self.arrivals} arrivals need rps > 0")
        if self.kind == "training" and self.arrivals != "closed":
            raise ValueError("training jobs run closed-loop")
        if not self.name:
            role = "hp" if self.high_priority else "be"
            object.__setattr__(
                self, "name", f"{role}-{self.model}-{self.kind}"
            )


@dataclass
class ExperimentConfig:
    """A full collocation experiment."""

    jobs: List[JobSpec]
    backend: str = "orion"
    device: str = "V100-16GB"
    duration: float = 5.0
    warmup: float = 0.5
    seed: int = 0
    record_utilization: bool = False
    # Extra kwargs forwarded to OrionConfig (ablation switches, thresholds).
    orion: Dict = field(default_factory=dict)
    profile_noise: float = 0.0
    # Run telemetry: tracing off by default (nil-tracer fast path).
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    def __post_init__(self):
        if not self.jobs:
            raise ValueError("experiment needs at least one job")
        if self.duration <= self.warmup:
            raise ValueError("duration must exceed warmup")
        names = [j.name for j in self.jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate job names: {names}")
        hp_count = sum(1 for j in self.jobs if j.high_priority)
        if self.backend in ("orion", "reef") and hp_count != 1:
            raise ValueError(f"{self.backend} needs exactly one high-priority job")
