"""Experiment runner: builds the simulator, backend, and clients; runs;
collects per-job latency/throughput and device utilization.

This is the harness behind every figure/table reproduction.  Offline
profiles (the §5.2 phase) are computed once per (model, kind, device)
and cached across experiments, exactly as a real deployment would reuse
profile files.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines import (
    DedicatedBackend,
    MpsBackend,
    PriorityStreamsBackend,
    ReefBackend,
    StreamsBackend,
    TemporalBackend,
    TickTockBackend,
)
from repro.core import OrionBackend, OrionConfig
from repro.gpu.device import GpuDevice
from repro.gpu.specs import DeviceSpec, get_device
from repro.metrics.latency import LatencySummary, summarize_latencies
from repro.metrics.throughput import throughput as throughput_of
from repro.metrics.utilization import UtilizationAverages, average_utilization
from repro.profiler.nsight import profile_plan
from repro.profiler.profiles import ModelProfile, ProfileStore
from repro.runtime.backend import Backend
from repro.runtime.client import ClientContext
from repro.runtime.host import HostGil, HostThread
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import NULL_TRACER
from repro.workloads.apollo import apollo_trace
from repro.workloads.arrivals import (
    ClosedLoop,
    PoissonArrivals,
    TraceArrivals,
    UniformArrivals,
)
from repro.workloads.clients import ClientStats, InferenceClient, TrainingClient
from repro.workloads.registry import build_plan

from .config import ExperimentConfig, JobSpec

__all__ = ["run_experiment", "ExperimentResult", "JobResult", "get_profile",
           "solo_throughput", "solo_latency_summary"]

# (model, kind, batch, device) -> ModelProfile; offline profiles are
# deterministic, so sharing them across experiments is sound.
_PROFILE_CACHE: Dict[tuple, ModelProfile] = {}


def get_profile(model: str, kind: str, device_spec: DeviceSpec,
                batch_size: int = 0) -> ModelProfile:
    key = (model, kind, batch_size, device_spec.name)
    if key not in _PROFILE_CACHE:
        plan = build_plan(model, kind, batch_size=batch_size)
        _PROFILE_CACHE[key] = profile_plan(plan, device_spec)
    return _PROFILE_CACHE[key]


@dataclass
class JobResult:
    """Per-job outcome of one experiment."""

    name: str
    model: str
    kind: str
    high_priority: bool
    latency: LatencySummary
    throughput: float
    stats: ClientStats


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    config: ExperimentConfig
    jobs: Dict[str, JobResult]
    utilization: Optional[UtilizationAverages] = None
    utilization_segments: List = field(default_factory=list)
    backend_stats: Dict = field(default_factory=dict)
    # The run's tracer (NULL_TRACER unless config.telemetry.tracing)
    # and the backend's metrics registry.
    tracer: object = NULL_TRACER
    metrics: Optional[MetricsRegistry] = None
    # Uniform run accounting for the Scenario API (bench/sweep).
    events_processed: int = 0
    sim_time: float = 0.0

    @property
    def hp_job(self) -> JobResult:
        for job in self.jobs.values():
            if job.high_priority:
                return job
        raise KeyError("no high-priority job in this experiment")

    def be_jobs(self) -> List[JobResult]:
        return [j for j in self.jobs.values() if not j.high_priority]

    @property
    def aggregate_throughput(self) -> float:
        return sum(j.throughput for j in self.jobs.values())


def _make_backend(config: ExperimentConfig, sim: Simulator,
                  device_spec: DeviceSpec, store: ProfileStore,
                  hp_latency: Optional[float]) -> Backend:
    def device_factory() -> GpuDevice:
        return GpuDevice(sim, device_spec,
                         record_utilization=config.record_utilization)

    name = config.backend
    if name == "ideal":
        return DedicatedBackend(sim, device_factory)
    device = device_factory()
    if name == "temporal":
        return TemporalBackend(sim, device)
    if name == "streams":
        return StreamsBackend(sim, device)
    if name == "priority-streams":
        return PriorityStreamsBackend(sim, device)
    if name == "mps":
        return MpsBackend(sim, device)
    if name == "reef":
        return ReefBackend(sim, device)
    if name == "ticktock":
        return TickTockBackend(sim, device)
    if name == "orion":
        orion_kwargs = dict(config.orion)
        orion_kwargs.setdefault("hp_request_latency", hp_latency)
        return OrionBackend(sim, device, store, OrionConfig(**orion_kwargs))
    raise ValueError(f"unknown backend {name!r}")


def _make_arrivals(job: JobSpec, config: ExperimentConfig, rng_factory: RngFactory):
    if job.arrivals == "closed":
        return ClosedLoop()
    if job.arrivals == "uniform":
        return UniformArrivals(job.rps)
    if job.arrivals == "poisson":
        return PoissonArrivals(job.rps, rng_factory.stream(f"poisson:{job.name}"))
    if job.arrivals == "apollo":
        from repro.sim.rng import substream_seed

        trace = apollo_trace(config.duration,
                             seed=substream_seed(config.seed, f"apollo:{job.name}"))
        return TraceArrivals(trace)
    raise ValueError(f"unknown arrival kind {job.arrivals!r}")


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Deprecated shim: build a Scenario and call ``scenario.run`` instead.

    Kept for back-compat; delegates to the unified Scenario API and
    returns the same :class:`ExperimentResult` it always did.
    """
    warnings.warn(
        "run_experiment() is deprecated and scheduled for removal two "
        "releases after the Scenario API shipped (DESIGN.md §6.9); use "
        "repro.experiments.scenario.run(Scenario(kind='experiment', "
        "experiment=config)) instead",
        FutureWarning, stacklevel=2)
    from .scenario import Scenario, run as run_scenario

    return run_scenario(Scenario(kind="experiment", experiment=config)).result


def _run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one collocation experiment end to end."""
    sim = Simulator()
    device_spec = get_device(config.device)
    rng_factory = RngFactory(config.seed)

    # Offline profiling phase (cached across runs).
    store = ProfileStore()
    hp_latency: Optional[float] = None
    for job in config.jobs:
        profile = get_profile(job.model, job.kind, device_spec, job.batch_size)
        store.add(profile)
        if job.high_priority:
            hp_latency = profile.request_latency

    backend = _make_backend(config, sim, device_spec, store, hp_latency)

    # Telemetry must be wired before clients register: queues and client
    # contexts capture the tracer reference at creation.
    tracer = config.telemetry.build_tracer(sim)
    backend.set_telemetry(tracer=tracer)
    if config.telemetry.engine_events:
        sim.attach_tracer(tracer)

    shared_gil = None if backend.process_per_client else HostGil(sim)
    clients = []
    for job in config.jobs:
        host = HostThread(
            sim,
            gil=shared_gil,
            interception_overhead=backend.interception_overhead(),
        )
        ctx = ClientContext(backend, job.name, host,
                            high_priority=job.high_priority, kind=job.kind)
        plan = build_plan(job.model, job.kind, batch_size=job.batch_size)
        if job.kind == "training":
            client = TrainingClient(sim, ctx, plan, device_spec, job.name,
                                    horizon=config.duration)
        else:
            arrivals = _make_arrivals(job, config, rng_factory)
            client = InferenceClient(sim, ctx, plan, device_spec, arrivals,
                                     job.name, horizon=config.duration)
        clients.append((job, client))

    backend.start()
    # Re-propagate the tracer to devices created during registration
    # (DedicatedBackend allocates one device per client).
    backend.set_telemetry()
    for _job, client in clients:
        client.start()
    sim.run(until=config.duration)

    jobs: Dict[str, JobResult] = {}
    for job, client in clients:
        records = client.stats.records
        latency = summarize_latencies(records, after=config.warmup)
        tput = throughput_of(records, config.warmup, config.duration)
        jobs[job.name] = JobResult(job.name, job.model, job.kind,
                                   job.high_priority, latency, tput,
                                   client.stats)

    result = ExperimentResult(config=config, jobs=jobs, tracer=tracer,
                              metrics=backend.metrics,
                              events_processed=sim.events_processed,
                              sim_time=sim.now)
    if config.record_utilization:
        segments = []
        for device in backend.devices():
            segments.extend(device.utilization_segments)
        result.utilization_segments = segments
        result.utilization = average_utilization(segments, config.warmup,
                                                 config.duration)
    if isinstance(backend, OrionBackend):
        result.backend_stats = {
            "be_kernels_launched": backend.be_kernels_launched,
            "be_kernels_deferred": backend.be_kernels_deferred,
            "profile_misses": backend.profile_misses,
            "sm_threshold": backend.sm_threshold,
            "clients_deregistered": backend.clients_deregistered,
            "watchdog_flags": len(backend.watchdog_flags),
            "hp_deadline_misses": backend.hp_deadline_misses,
            "be_suspensions": backend.be_suspensions,
        }
        result.backend_stats["queue_telemetry"] = backend.queue_telemetry()
    return result


def solo_throughput(model: str, kind: str, device: str = "V100-16GB",
                    batch_size: int = 0) -> float:
    """Dedicated-GPU throughput (1 / solo request latency)."""
    profile = get_profile(model, kind, get_device(device), batch_size)
    return 1.0 / profile.request_latency


def solo_latency_summary(model: str, device: str = "V100-16GB",
                         batch_size: int = 0) -> float:
    """Dedicated-GPU inference request latency (the Ideal reference)."""
    profile = get_profile(model, "inference", get_device(device), batch_size)
    return profile.request_latency
