"""Typed per-kind scenario parameter surfaces.

Before this module, the non-experiment scenario kinds (overload,
faults, fleet, llm) each carried an untyped ``params`` kwargs dict that
was only checked when the implementation function finally ran — a typo
in a knob name surfaced minutes into a sweep instead of at build time.
Each kind now has a frozen dataclass mirroring its implementation
signature exactly; :func:`validate_params` is invoked from
``Scenario.__post_init__`` so **every** construction path (CLI flags,
``make_scenario`` overrides, serve-daemon submits, hand-built
scenarios) fails fast on unknown keys or out-of-range values.

The dataclasses are also constructors: ``OverloadParams(be_clients=4)
.to_params()`` renders the sparse override dict a ``Scenario`` carries
(only non-default fields), which keeps ``describe()`` and the scenario
catalog stable.  The CLI builds its params through these types.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "OverloadParams",
    "FaultsParams",
    "FleetParams",
    "LlmParams",
    "PARAM_TYPES",
    "validate_params",
]

# Kept as literals (not imports) so scenario construction stays light;
# the implementations assert the same sets at run time.
_OVERLOAD_POLICIES = ("block", "reject")
_CACHE_POLICIES = ("evict", "block")
_LLM_BACKENDS = ("orion", "temporal", "streams", "priority-streams")
_OVERLOAD_ARRIVALS = ("poisson", "burst", "ramp")


class _ParamsBase:
    """Shared machinery: sparse rendering + common range checks."""

    def to_params(self) -> Dict[str, Any]:
        """Sparse params dict: only fields that differ from defaults."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            default = f.default if f.default is not MISSING else MISSING
            if default is MISSING or value != default:
                out[f.name] = value
        return out

    def _require_positive(self, *names: str) -> None:
        for name in names:
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")

    def _require_non_negative(self, *names: str) -> None:
        for name in names:
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")

    def _require_choice(self, name: str, choices) -> None:
        value = getattr(self, name)
        if value not in choices:
            raise ValueError(f"{name} must be one of {choices}, got {value!r}")


@dataclass(frozen=True)
class OverloadParams(_ParamsBase):
    """Knobs of ``Scenario(kind="overload")`` (see experiments.overload)."""

    seed: int = 0
    duration: float = 0.4
    model: str = "mobilenet_v2"
    device: str = "V100-16GB"
    be_clients: int = 2
    hp_load: float = 0.3
    be_load: float = 2.0
    arrivals: str = "poisson"
    deadline_mult: Optional[float] = 20.0
    slo_mult: float = 1.2
    guard: bool = True
    queue_depth: Optional[int] = 32
    policy: str = "block"
    initial_dur_frac: float = 0.35
    warmup: float = 0.0
    telemetry: Optional[object] = None

    def __post_init__(self):
        self._require_positive("duration", "hp_load", "slo_mult",
                               "deadline_mult", "queue_depth",
                               "initial_dur_frac")
        self._require_non_negative("be_clients", "be_load", "warmup")
        self._require_choice("policy", _OVERLOAD_POLICIES)
        self._require_choice("arrivals", _OVERLOAD_ARRIVALS)


@dataclass(frozen=True)
class FaultsParams(_ParamsBase):
    """Knobs of ``Scenario(kind="faults")`` (see faults.scenario)."""

    seed: int = 0
    duration: float = 0.2
    plan: Optional[object] = None   #: FaultPlan; None samples from seed
    backend: str = "orion"
    be_clients: int = 2
    model: str = "mobilenet_v2"
    device: str = "V100-16GB"
    hp_rps: float = 100.0
    watchdog_multiple: Optional[float] = None
    warmup: float = 0.0

    def __post_init__(self):
        self._require_positive("duration", "hp_rps", "watchdog_multiple")
        self._require_non_negative("be_clients", "warmup")


@dataclass(frozen=True)
class FleetParams(_ParamsBase):
    """Knobs of ``Scenario(kind="fleet")`` (see cluster.fleet)."""

    seed: int = 0
    duration: float = 0.2
    num_gpus: int = 8
    backend: str = "orion"
    model: str = "mobilenet_v2"
    device: str = "V100-16GB"
    tenants: Optional[object] = None  #: Sequence[TenantSpec]
    plan: Optional[object] = None     #: FaultPlan
    crashes: int = 1
    degrades: int = 1
    slowdown: float = 3.0
    recover_after: Optional[float] = None
    hp_load: float = 0.25
    be_load: float = 0.35
    be_tenants: int = 2
    interference_weight: float = 1.0
    health_weight: float = 4.0
    warmup: float = 0.0
    telemetry: Optional[object] = None
    placement: object = "all"
    max_tenants_per_gpu: int = 2
    rebalance: bool = False
    rebalance_interval: float = 0.02
    migration_cooldown: float = 0.04
    max_inflight_migrations: int = 1
    migration_min_gain: float = 0.05
    migration_cost_weight: float = 1.0
    measure_window: int = 32
    measure_min_samples: int = 8

    def __post_init__(self):
        self._require_positive("duration", "num_gpus", "slowdown",
                               "recover_after", "rebalance_interval",
                               "max_tenants_per_gpu", "measure_window",
                               "measure_min_samples")
        self._require_non_negative("crashes", "degrades", "be_tenants",
                                   "warmup", "hp_load", "be_load",
                                   "migration_cooldown",
                                   "max_inflight_migrations",
                                   "migration_min_gain")


@dataclass(frozen=True)
class LlmParams(_ParamsBase):
    """Knobs of ``Scenario(kind="llm")`` (see workloads.llmserve)."""

    seed: int = 0
    duration: float = 0.2
    model: str = "llm-small"
    device: str = "V100-16GB"
    backend: str = "orion"
    request_rate: float = 80.0
    prompt_mean: float = 64.0
    prompt_cap: int = 256
    output_mean: float = 8.0
    output_cap: int = 64
    max_batch: int = 8
    kv_budget_mb: Optional[float] = None
    kv_block_tokens: int = 16
    cache_policy: str = "evict"
    be_model: str = "mobilenet_v2"
    be_clients: int = 1
    protect_prefill: bool = True
    ttft_slo_mult: float = 3.0
    warmup: float = 0.0
    telemetry: Optional[object] = None

    def __post_init__(self):
        self._require_positive("duration", "request_rate", "prompt_mean",
                               "prompt_cap", "output_mean", "output_cap",
                               "max_batch", "kv_budget_mb",
                               "kv_block_tokens", "ttft_slo_mult")
        self._require_non_negative("be_clients", "warmup")
        self._require_choice("cache_policy", _CACHE_POLICIES)
        self._require_choice("backend", _LLM_BACKENDS)
        if self.prompt_mean > self.prompt_cap:
            raise ValueError("prompt_mean must be <= prompt_cap")
        if self.output_mean > self.output_cap:
            raise ValueError("output_mean must be <= output_cap")


#: kind -> typed params dataclass (experiment scenarios carry an
#: ExperimentConfig instead and are validated by it).
PARAM_TYPES = {
    "overload": OverloadParams,
    "faults": FaultsParams,
    "fleet": FleetParams,
    "llm": LlmParams,
}


def validate_params(kind: str, params: Mapping[str, Any]) -> None:
    """Fail fast on unknown or out-of-range knobs for ``kind``.

    Raises ``ValueError`` naming the offending key (with the valid
    surface) or the out-of-range value.  Does not mutate or expand
    ``params`` — scenarios keep carrying sparse override dicts.
    """
    cls = PARAM_TYPES.get(kind)
    if cls is None:
        return
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ValueError(
            f"unknown {kind} scenario parameter(s) {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(known))}")
    cls(**params)  # range/choice checks in __post_init__
