"""Plain-text table/series formatting for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and readable in
pytest output and in the EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series", "ratio"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width text table."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Figure series as aligned (x, y) pairs."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    lines = [f"# {name}: {x_label} -> {y_label}"]
    lines.extend(f"{_cell(x):>12}  {_cell(y)}" for x, y in zip(xs, ys))
    return "\n".join(lines)


def ratio(value: float, reference: float) -> float:
    """value / reference with a helpful error for degenerate references."""
    if reference <= 0:
        raise ValueError(f"reference must be positive, got {reference}")
    return value / reference


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
