"""Parallel sweep engine: a scenario × seed grid across worker processes.

``run_sweep(scenarios, seeds, workers=N)`` fans every (named scenario,
seed) cell of the grid out over a process pool and merges the per-cell
canonical results into one report.  Three properties are load-bearing:

* **Determinism.**  Each cell is seeded explicitly from the grid (the
  cell *is* its (name, seed) pair — nothing depends on which worker ran
  it or when), and the merged report serializes cells in sorted key
  order with wall-clock excluded, so ``--workers 1`` and ``--workers N``
  produce byte-identical JSON.
* **Crash isolation.**  A cell that raises is recorded as a failed cell
  (``status: "failed"`` with the exception text) without taking down
  its siblings; a worker process that dies outright marks its cell
  ``status: "crashed"``.  The sweep itself always returns a report.
* **Shared catalog.**  Cells are named scenarios from
  :func:`repro.experiments.registry.make_scenario`, the same catalog
  the CLI and bench use — a sweep is just the grid-shaped way to run
  them.

Used by ``python -m repro sweep``.
"""

from __future__ import annotations

import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Sequence

from .registry import make_scenario
from .scenario import run

__all__ = ["run_sweep", "run_cell", "sweep_to_json"]


def run_cell(name: str, seed: int) -> Dict:
    """Run one (scenario, seed) cell; never raises.

    Top-level so the process pool can pickle it by reference.  The
    payload carries ``status`` — scenario exceptions become failed
    cells, which is what keeps one bad cell from sinking a grid.
    """
    try:
        result = run(make_scenario(name, seed=seed))
        return {"status": "ok", "result": result.canonical()}
    except Exception as exc:  # noqa: BLE001 — cell isolation is the contract
        return {"status": "failed",
                "error": f"{type(exc).__name__}: {exc}"}


def _cell_key(name: str, seed: int) -> str:
    return f"{name}@seed={seed}"


def run_sweep(scenarios: Sequence[str], seeds: Sequence[int],
              workers: int = 1) -> Dict:
    """Run the full scenario × seed grid and merge the results.

    Returns a plain-data report: ``grid`` describes the sweep, and
    ``cells`` maps ``"<name>@seed=<seed>"`` to each cell's payload.
    Serialize with :func:`sweep_to_json` for the canonical byte-stable
    form.
    """
    scenarios = list(scenarios)
    seeds = [int(seed) for seed in seeds]
    if not scenarios or not seeds:
        raise ValueError("sweep needs at least one scenario and one seed")
    if workers < 1:
        raise ValueError("workers must be >= 1")

    cells = [(name, seed) for name in scenarios for seed in seeds]
    payloads: Dict[str, Dict] = {}
    if workers == 1:
        for name, seed in cells:
            payloads[_cell_key(name, seed)] = run_cell(name, seed)
    else:
        # fork inherits the warm in-process profile cache; fall back to
        # spawn where fork is unavailable.  Determinism is unaffected:
        # every cell is seeded explicitly.
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() \
            else "spawn"
        ctx = multiprocessing.get_context(method)
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = {(name, seed): pool.submit(run_cell, name, seed)
                       for name, seed in cells}
            for (name, seed), future in futures.items():
                try:
                    payload = future.result()
                except Exception as exc:  # worker process died outright
                    payload = {"status": "crashed",
                               "error": f"{type(exc).__name__}: {exc}"}
                payloads[_cell_key(name, seed)] = payload

    failed = sum(1 for p in payloads.values() if p["status"] != "ok")
    return {
        "grid": {
            "scenarios": scenarios,
            "seeds": seeds,
            "cells": len(cells),
            "failed": failed,
        },
        "cells": {key: payloads[key] for key in sorted(payloads)},
    }


def sweep_to_json(report: Dict) -> str:
    """Canonical byte-stable serialization of a sweep report."""
    return json.dumps(report, sort_keys=True, separators=(",", ":"),
                      default=float)
