"""Overload scenario: an inference service pushed past GPU capacity.

One high-priority inference client shares the GPU with N best-effort
inference clients under the Orion scheduler; the offered load totals a
multiple of the device's capacity (1 / solo request latency), so
without protection the best-effort work drowns the high-priority job.
The scenario wires up the full overload-protection stack of
DESIGN.md §6.2:

* bounded best-effort software queues ("block" backpressure or
  "reject" load shedding with the retryable ``QUEUE_FULL`` status);
* per-request deadlines with shed-at-admission on every client;
* optionally the adaptive :class:`~repro.core.sloguard.SloGuard`,
  which tightens DUR_THRESHOLD / suspends best-effort admission when
  the windowed HP latency quantile breaches the SLO.

The Orion config deliberately starts with a *loose* DUR_THRESHOLD
(``initial_dur_frac``), so the unguarded run demonstrates the breach
the guard exists to fix.  Used by ``python -m repro overload``, the
``examples/overload.py`` demo, and ``benchmarks/test_overload_guard``.
Fully deterministic under (seed, arguments).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import OrionBackend, OrionConfig, SloGuard, SloGuardConfig
from repro.experiments.runner import get_profile
from repro.gpu.device import GpuDevice
from repro.gpu.specs import get_device
from repro.metrics.availability import ErrorLedger
from repro.metrics.latency import LatencySummary, summarize_latencies
from repro.profiler.profiles import ProfileStore
from repro.runtime.client import ClientContext
from repro.runtime.host import HostGil, HostThread
from repro.sim.engine import Simulator
from repro.sim.rng import RngFactory
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import NULL_TRACER, TelemetryConfig
from repro.workloads.arrivals import make_arrivals
from repro.workloads.clients import ClientStats, InferenceClient
from repro.workloads.registry import build_plan

__all__ = ["OverloadResult", "run_overload_scenario"]


@dataclass
class OverloadResult:
    """Everything one overload scenario produced."""

    capacity: float              #: requests/s the GPU serves solo
    solo_latency: float          #: dedicated-GPU request latency (s)
    slo: Optional[float]         #: HP latency SLO handed to the guard (s)
    hp_latency: LatencySummary
    jobs: Dict[str, ClientStats]
    ledger: ErrorLedger
    backend_stats: Dict = field(default_factory=dict)
    queue_telemetry: Dict[str, dict] = field(default_factory=dict)
    guard_actions: List[dict] = field(default_factory=list)
    guard_summary: Optional[dict] = None
    # The run's tracer (NULL_TRACER unless telemetry.tracing was set),
    # the backend's metrics registry, and any utilization segments the
    # device recorded (only when tracing, for the trace's counters).
    tracer: object = NULL_TRACER
    metrics: Optional[MetricsRegistry] = None
    utilization_segments: List = field(default_factory=list)
    # Uniform run accounting for the Scenario API (bench/sweep).
    events_processed: int = 0
    sim_time: float = 0.0

    @property
    def hp_stats(self) -> ClientStats:
        return self.jobs["hp"]

    def be_goodput(self, duration: float, warmup: float = 0.0) -> float:
        """Served best-effort requests per second (shed/failed excluded)."""
        span = duration - warmup
        if span <= 0:
            return 0.0
        served = sum(len(stats.completed(after=warmup))
                     for name, stats in self.jobs.items() if name != "hp")
        return served / span

    def total_shed(self) -> int:
        return sum(stats.shed for stats in self.jobs.values())


def run_overload_scenario(
    seed: int = 0,
    duration: float = 0.4,
    model: str = "mobilenet_v2",
    device: str = "V100-16GB",
    be_clients: int = 2,
    hp_load: float = 0.3,
    be_load: float = 2.0,
    arrivals: str = "poisson",
    deadline_mult: Optional[float] = 20.0,
    slo_mult: float = 1.2,
    guard: bool = True,
    queue_depth: Optional[int] = 32,
    policy: str = "block",
    initial_dur_frac: float = 0.35,
    warmup: float = 0.0,
    telemetry: Optional[TelemetryConfig] = None,
) -> OverloadResult:
    """Deprecated shim: build a Scenario and call ``scenario.run`` instead.

    Kept for back-compat; delegates to the unified Scenario API and
    returns the same :class:`OverloadResult` it always did.
    """
    warnings.warn(
        "run_overload_scenario() is deprecated and scheduled for removal "
        "two releases after the Scenario API shipped (DESIGN.md §6.9); use "
        "repro.experiments.scenario.run(Scenario(kind='overload', "
        "params={...})) instead",
        FutureWarning, stacklevel=2)
    from .scenario import Scenario, run as run_scenario

    params = dict(
        seed=seed, duration=duration, model=model, device=device,
        be_clients=be_clients, hp_load=hp_load, be_load=be_load,
        arrivals=arrivals, deadline_mult=deadline_mult, slo_mult=slo_mult,
        guard=guard, queue_depth=queue_depth, policy=policy,
        initial_dur_frac=initial_dur_frac, warmup=warmup,
        telemetry=telemetry,
    )
    return run_scenario(Scenario(kind="overload", params=params)).result


def _run_overload_scenario(
    seed: int = 0,
    duration: float = 0.4,
    model: str = "mobilenet_v2",
    device: str = "V100-16GB",
    be_clients: int = 2,
    hp_load: float = 0.3,
    be_load: float = 2.0,
    arrivals: str = "poisson",
    deadline_mult: Optional[float] = 20.0,
    slo_mult: float = 1.2,
    guard: bool = True,
    queue_depth: Optional[int] = 32,
    policy: str = "block",
    initial_dur_frac: float = 0.35,
    warmup: float = 0.0,
    telemetry: Optional[TelemetryConfig] = None,
) -> OverloadResult:
    """Run the overload scenario and return its accounting.

    ``hp_load`` and ``be_load`` are offered loads as fractions of the
    solo capacity (``be_load`` is split across the ``be_clients``
    best-effort clients); their sum past 1.0 is overload by
    construction.  ``arrivals`` picks the HP arrival process
    ("poisson", "burst", or "ramp"); best-effort clients always use
    Poisson arrivals.  ``deadline_mult`` (× solo latency, None
    disables) arms shed-at-admission on the best-effort clients;
    ``slo_mult`` × solo latency is the HP SLO the guard enforces when
    ``guard`` is on.  ``queue_depth``/``policy`` bound the best-effort
    software queues; ``initial_dur_frac`` is the (deliberately loose)
    starting DUR_THRESHOLD fraction the guard tightens from.
    """
    if be_clients < 0:
        raise ValueError("be_clients must be >= 0")
    if hp_load <= 0:
        raise ValueError("hp_load must be positive")
    if be_load < 0:
        raise ValueError("be_load must be >= 0")

    sim = Simulator()
    device_spec = get_device(device)
    rng_factory = RngFactory(seed)
    ledger = ErrorLedger()

    profile = get_profile(model, "inference", device_spec)
    store = ProfileStore()
    store.add(profile)
    solo_latency = profile.request_latency
    capacity = 1.0 / solo_latency
    slo = slo_mult * solo_latency
    be_deadline = None if deadline_mult is None \
        else deadline_mult * solo_latency

    telemetry = telemetry or TelemetryConfig()
    # Utilization segments feed the trace's device counters; recording
    # them without a tracer would only burn memory.
    gpu = GpuDevice(sim, device_spec,
                    record_utilization=telemetry.tracing)
    backend = OrionBackend(sim, gpu, store, OrionConfig(
        hp_request_latency=solo_latency,
        dur_threshold_frac=initial_dur_frac,
        be_queue_depth=queue_depth,
        overload_policy=policy,
    ))
    tracer = telemetry.build_tracer(sim)
    backend.set_telemetry(tracer=tracer)
    if telemetry.engine_events:
        sim.attach_tracer(tracer)

    gil = HostGil(sim)

    def make_ctx(name: str, high_priority: bool) -> ClientContext:
        host = HostThread(sim, gil=gil,
                          interception_overhead=backend.interception_overhead())
        return ClientContext(backend, name, host,
                             high_priority=high_priority, kind="inference")

    plan = build_plan(model, "inference")
    hp_rps = hp_load * capacity
    hp_arrivals = make_arrivals(
        arrivals, rps=hp_rps, rng=rng_factory.stream("arrivals:hp"),
        burst_rps=3.0 * hp_rps, burst_every=duration / 4,
        burst_duration=duration / 16,
        end_rps=3.0 * hp_rps, ramp_duration=duration,
    )
    clients: List[InferenceClient] = [InferenceClient(
        sim, make_ctx("hp", True), plan, device_spec, hp_arrivals,
        "hp", horizon=duration, ledger=ledger,
    )]
    be_rps = (be_load * capacity / be_clients) if be_clients else 0.0
    for i in range(be_clients):
        name = f"be-{i}"
        clients.append(InferenceClient(
            sim, make_ctx(name, False), plan, device_spec,
            make_arrivals("poisson", rps=be_rps,
                          rng=rng_factory.stream(f"arrivals:{name}")),
            name, horizon=duration, ledger=ledger, deadline=be_deadline,
        ))

    slo_guard: Optional[SloGuard] = None
    if guard:
        slo_guard = SloGuard(sim, backend, SloGuardConfig(
            slo=slo, check_interval=max(4.0 * solo_latency, 1e-4),
        )).start()

    backend.start()
    for client in clients:
        client.start()
    sim.run(until=duration)
    ledger.finalize(duration)

    jobs = {c.name: c.stats for c in clients}
    hp_latency = summarize_latencies(jobs["hp"].records, after=warmup)

    backend_stats = {
        "be_kernels_launched": backend.be_kernels_launched,
        "be_kernels_deferred": backend.be_kernels_deferred,
        "hp_deadline_misses": backend.hp_deadline_misses,
        "be_suspensions": backend.be_suspensions,
        "dur_threshold_frac": backend.config.dur_threshold_frac,
    }
    return OverloadResult(
        capacity=capacity,
        solo_latency=solo_latency,
        slo=slo if guard else None,
        hp_latency=hp_latency,
        jobs=jobs,
        ledger=ledger,
        backend_stats=backend_stats,
        queue_telemetry=backend.queue_telemetry(),
        guard_actions=list(slo_guard.actions) if slo_guard else [],
        guard_summary=slo_guard.summary() if slo_guard else None,
        tracer=tracer,
        metrics=backend.metrics,
        utilization_segments=list(gpu.utilization_segments),
        events_processed=sim.events_processed,
        sim_time=sim.now,
    )
