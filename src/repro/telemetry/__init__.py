"""Runtime telemetry: structured tracing, metrics, and trace export.

The measurement substrate for the reproduction (DESIGN.md §6.3).  Three
pieces, all deterministic and wall-clock-free:

* :class:`Tracer` — ring-buffered structured event recorder for kernel
  lifecycle spans (``submit → enqueue → schedule → dispatch →
  complete``) and scheduler-decision instants; off by default behind
  the :data:`NULL_TRACER` fast path.
* :class:`MetricsRegistry` — named counters/gauges/fixed-bucket
  histograms with canonical JSON snapshots, replacing the ad-hoc
  per-backend telemetry dicts.
* Exporters — Chrome trace-event JSON (Perfetto-viewable) and the
  per-request queue-delay attribution report.
"""

from .attribution import (
    RequestAttribution,
    attribute_requests,
    attribution_report,
    format_attribution_table,
)
from .chrome_trace import build_chrome_trace, export_chrome_trace
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import NULL_TRACER, NullTracer, TelemetryConfig, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TelemetryConfig",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "build_chrome_trace",
    "export_chrome_trace",
    "RequestAttribution",
    "attribute_requests",
    "attribution_report",
    "format_attribution_table",
]
