"""Deterministic metrics registry: counters, gauges, and histograms.

This replaces the ad-hoc per-backend telemetry dicts with named,
labelled instruments that serialize canonically.  Everything is driven
by *simulated* time and explicit ``observe``/``inc`` calls — there is
no wall-clock anywhere, so two same-seed runs produce byte-identical
snapshots (the determinism contract the availability ledger and the
SLO-guard action trace already honour).

Histograms use HDR-style fixed bucket boundaries (a 1-2-5 ladder per
decade by default) rather than data-dependent bins: the bucket layout
is part of the schema, never a function of the samples, which keeps
snapshots comparable across runs and seeds.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

# Values serialize with fixed rounding so float noise from event
# ordering can never leak into the canonical snapshot.
_VALUE_DECIMALS = 9


def _round(v: float) -> float:
    return round(float(v), _VALUE_DECIMALS)


def _bucket_ladder(lo: float, hi: float) -> Tuple[float, ...]:
    """1-2-5 ladder of bucket upper bounds covering [lo, hi]."""
    bounds: List[float] = []
    decade = lo
    while decade <= hi * (1 + 1e-12):
        for mult in (1.0, 2.0, 5.0):
            bound = decade * mult
            if bound > hi * (1 + 1e-12):
                break
            bounds.append(bound)
        decade *= 10.0
    return tuple(bounds)


#: Default histogram boundaries: 1 µs .. 10 s in a 1-2-5 ladder —
#: spans every latency this simulator produces, fixed forever.
DEFAULT_LATENCY_BUCKETS = _bucket_ladder(1e-6, 10.0)


class Counter:
    """Monotonic (by convention) accumulator.

    ``value`` is a plain attribute so legacy call sites that did
    ``stats_dict["key"] += 1`` keep working through the back-compat
    properties layered on top (e.g. ``SoftwareQueue.enqueued_total``).
    """

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-set value plus its high-water mark."""

    __slots__ = ("value", "max_seen")

    def __init__(self):
        self.value = 0
        self.max_seen = 0

    def set(self, v) -> None:
        self.value = v
        if v > self.max_seen:
            self.max_seen = v


class Histogram:
    """Fixed-bucket histogram (HDR-style: boundaries are schema).

    ``counts[i]`` counts samples ``<= bounds[i]``; the final slot is the
    overflow bucket (``> bounds[-1]``).  Mean is recoverable from
    ``total``/``count``; quantile estimates come from the cumulative
    bucket counts — coarse, but deterministic and mergeable.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Optional[Iterable[float]] = None):
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds is not None \
            else DEFAULT_LATENCY_BUCKETS
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # bisect: first bound >= value
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.count += 1
        self.total += value

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the q-quantile sample
        (None while empty; +inf when it lands in the overflow bucket)."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")

    def to_dict(self) -> dict:
        return {
            "bounds": [_round(b) for b in self.bounds],
            "counts": list(self.counts),
            "count": self.count,
            "total": _round(self.total),
        }


def _key(name: str, labels: Dict[str, str]) -> Tuple:
    return (name,) + tuple(sorted(labels.items()))


def _render_key(key: Tuple) -> str:
    name = key[0]
    if len(key) == 1:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key[1:])
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named, labelled instruments with a canonical snapshot.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call with a given (name, labels) pair creates the instrument and
    every later call returns the same object, so hot paths can cache
    the instrument reference and skip the lookup entirely.
    """

    def __init__(self):
        self._counters: Dict[Tuple, Counter] = {}
        self._gauges: Dict[Tuple, Gauge] = {}
        self._histograms: Dict[Tuple, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = _key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, bounds: Optional[Iterable[float]] = None,
                  **labels: str) -> Histogram:
        key = _key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(bounds)
        return inst

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Canonical nested dict: sorted keys, rounded values."""
        return {
            "counters": {_render_key(k): v.value
                         for k, v in sorted(self._counters.items())},
            "gauges": {_render_key(k): {"value": _round(v.value)
                                        if isinstance(v.value, float)
                                        else v.value,
                                        "max": _round(v.max_seen)
                                        if isinstance(v.max_seen, float)
                                        else v.max_seen}
                       for k, v in sorted(self._gauges.items())},
            "histograms": {_render_key(k): v.to_dict()
                           for k, v in sorted(self._histograms.items())},
        }

    def to_json(self) -> str:
        """Byte-identical across same-seed runs (canonical JSON)."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))
