"""Chrome trace-event JSON export (viewable in Perfetto / chrome://tracing).

Converts a :class:`~repro.telemetry.tracer.Tracer` buffer into the
Trace Event Format: one process per layer (clients, scheduler, device),
one thread-track per client for kernel execution plus companion tracks
for software-queue residence and request spans, instant events for
scheduler/guard/fault decisions, and counter tracks for queue depths
and (optionally) device utilization segments.

Serialization is canonical — op sequence numbers are renumbered by
first appearance (the process-global counter is not stable across
runs), timestamps are rounded to nanosecond resolution, and the JSON is
dumped with sorted keys — so two same-seed runs export byte-identical
traces.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from . import tracer as ev

__all__ = ["build_chrome_trace", "export_chrome_trace"]

# Process ids: one per layer of the stack.
PID_CLIENTS = 1
PID_SCHEDULER = 2
PID_DEVICE = 3

# Tracks per client on PID_CLIENTS (execution, queue residence, requests).
_TRACKS_PER_CLIENT = 3


def _us(t: float) -> float:
    """Seconds -> microseconds at fixed nanosecond resolution."""
    return round(t * 1e6, 3)


def _client_name(client) -> str:
    return client if client is not None else "(unattributed)"


class _OpStamps:
    __slots__ = ("client", "name", "is_kernel", "submit", "enqueue",
                 "schedule", "dispatch", "complete", "stream", "solo", "ok")

    def __init__(self):
        self.client = None
        self.name = None
        self.is_kernel = False
        self.submit = None
        self.enqueue = None
        self.schedule = None
        self.dispatch = None
        self.complete = None
        self.stream = None
        self.solo = None
        self.ok = True


def collect_ops(events) -> "Dict[int, _OpStamps]":
    """Fold lifecycle events into per-op stamp records (keyed by the
    raw op seq; insertion order is first-appearance order)."""
    ops: Dict[int, _OpStamps] = {}

    def get(seq) -> _OpStamps:
        rec = ops.get(seq)
        if rec is None:
            rec = ops[seq] = _OpStamps()
        return rec

    for event in events:
        kind = event[0]
        if kind == ev.SUBMIT:
            _, ts, client, seq, name, is_kernel = event
            rec = get(seq)
            rec.submit = ts
            rec.client = _client_name(client)
            rec.name = name
            rec.is_kernel = is_kernel
        elif kind == ev.ENQUEUE:
            _, ts, client, seq, _depth = event
            rec = get(seq)
            rec.enqueue = ts
            if rec.client is None:
                rec.client = _client_name(client)
        elif kind == ev.SCHEDULE:
            _, ts, client, seq = event
            rec = get(seq)
            rec.schedule = ts
            if rec.client is None:
                rec.client = _client_name(client)
        elif kind == ev.DISPATCH:
            _, ts, client, seq, stream = event
            rec = get(seq)
            rec.dispatch = ts
            rec.stream = stream
            if rec.client is None:
                rec.client = _client_name(client)
        elif kind == ev.COMPLETE:
            _, ts, client, seq, stream, solo, ok = event
            rec = get(seq)
            rec.complete = ts
            rec.stream = stream
            rec.solo = solo
            rec.ok = ok
            if rec.client is None:
                rec.client = _client_name(client)
    return ops


def build_chrome_trace(
    tracer,
    utilization_segments: Optional[Sequence[Tuple]] = None,
) -> dict:
    """Trace Event Format payload as a plain dict.

    ``utilization_segments`` (the device's piecewise-constant
    ``(t0, t1, compute, memory, sm)`` records) adds compute/memory
    counter tracks under the device process when provided.
    """
    events = list(tracer.iter_events())
    ops = collect_ops(events)

    # Deterministic track assignment: clients sorted by name.
    clients = sorted({rec.client for rec in ops.values() if rec.client}
                     | {_client_name(e[2]) for e in events if e[0] == ev.REQUEST})
    client_tid = {c: _TRACKS_PER_CLIENT * i for i, c in enumerate(clients)}
    instant_tracks = sorted({e[2] for e in events
                             if e[0] in (ev.INSTANT, ev.SPAN)})
    instant_tid = {t: i for i, t in enumerate(instant_tracks)}

    out: List[dict] = []

    def meta(pid: int, tid: Optional[int], name: str) -> None:
        entry = {"ph": "M", "pid": pid, "tid": tid if tid is not None else 0,
                 "ts": 0,
                 "name": "process_name" if tid is None else "thread_name",
                 "args": {"name": name}}
        out.append(entry)

    meta(PID_CLIENTS, None, "clients")
    meta(PID_SCHEDULER, None, "scheduler")
    meta(PID_DEVICE, None, "device")
    for client in clients:
        base = client_tid[client]
        meta(PID_CLIENTS, base, client)
        meta(PID_CLIENTS, base + 1, f"{client} queue")
        meta(PID_CLIENTS, base + 2, f"{client} requests")
    for track in instant_tracks:
        meta(PID_SCHEDULER, instant_tid[track], track)

    # Op sequence numbers renumbered by first appearance: the global
    # counter they come from is process-wide, not per-run.
    norm_seq = {seq: i for i, seq in enumerate(ops)}

    for seq, rec in ops.items():
        if rec.client is None:
            continue
        base = client_tid[rec.client]
        # Software-queue residence (submit -> schedule).
        if rec.submit is not None and rec.schedule is not None \
                and rec.schedule > rec.submit:
            out.append({
                "ph": "X", "pid": PID_CLIENTS, "tid": base + 1,
                "ts": _us(rec.submit),
                "dur": round(_us(rec.schedule) - _us(rec.submit), 3),
                "name": f"{rec.name} (queued)", "cat": "queue",
                "args": {"op": norm_seq[seq]},
            })
        # Execution on the device (dispatch -> complete).
        if rec.dispatch is not None and rec.complete is not None:
            args = {"op": norm_seq[seq], "ok": rec.ok}
            if rec.stream is not None:
                args["stream"] = rec.stream
            if rec.solo is not None:
                args["solo_us"] = _us(rec.solo)
            sched = rec.schedule if rec.schedule is not None else rec.submit
            if sched is not None:
                args["hw_queue_us"] = round(
                    _us(rec.dispatch) - _us(sched), 3)
            out.append({
                "ph": "X", "pid": PID_CLIENTS, "tid": base,
                "ts": _us(rec.dispatch),
                "dur": round(_us(rec.complete) - _us(rec.dispatch), 3),
                "name": rec.name or "op",
                "cat": "kernel" if rec.is_kernel else "memory",
                "args": args,
            })

    for event in events:
        kind = event[0]
        if kind == ev.INSTANT:
            _, ts, track, name, args = event
            out.append({
                "ph": "i", "pid": PID_SCHEDULER, "tid": instant_tid[track],
                "ts": _us(ts), "s": "t", "name": name, "cat": track,
                "args": {k: v for k, v in args},
            })
        elif kind == ev.SPAN:
            _, _ts, track, name, start, end, args = event
            out.append({
                "ph": "X", "pid": PID_SCHEDULER, "tid": instant_tid[track],
                "ts": _us(start), "dur": round(_us(end) - _us(start), 3),
                "name": name, "cat": track,
                "args": {k: v for k, v in args},
            })
        elif kind == ev.COUNTER:
            _, ts, track, name, value = event
            out.append({
                "ph": "C", "pid": PID_DEVICE, "tid": 0,
                "ts": _us(ts), "name": f"{track}.{name}",
                "args": {"value": value},
            })
        elif kind == ev.REQUEST:
            _, end, client, arrival, start = event
            name = _client_name(client)
            out.append({
                "ph": "X", "pid": PID_CLIENTS,
                "tid": client_tid[name] + 2,
                "ts": _us(start), "dur": round(_us(end) - _us(start), 3),
                "name": "request", "cat": "request",
                "args": {"queue_wait_us": round(_us(start) - _us(arrival), 3)},
            })

    if utilization_segments:
        for t0, _t1, compute, memory, _sm in utilization_segments:
            ts = _us(t0)
            out.append({"ph": "C", "pid": PID_DEVICE, "tid": 0, "ts": ts,
                        "name": "util.compute",
                        "args": {"value": round(compute, 6)}})
            out.append({"ph": "C", "pid": PID_DEVICE, "tid": 0, "ts": ts,
                        "name": "util.memory_bw",
                        "args": {"value": round(memory, 6)}})

    return {
        "displayTimeUnit": "ms",
        "metadata": {
            "tool": "repro.telemetry",
            "dropped_events": tracer.dropped,
        },
        "traceEvents": out,
    }


def export_chrome_trace(
    tracer,
    utilization_segments: Optional[Sequence[Tuple]] = None,
) -> str:
    """Canonical Chrome trace JSON (byte-identical across same-seed runs)."""
    payload = build_chrome_trace(tracer, utilization_segments)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
