"""Per-request queue-delay attribution.

Decomposes each traced request's end-to-end latency into four
components that sum *exactly* to the measurement:

* ``queue``        — time no op of the request was on the device or in
  a hardware queue: software-queue residence, host launch gaps, and
  admission backpressure;
* ``dispatch``     — time at least one op sat between the scheduler's
  pop and its start on the SMs (the hardware-queue delay Orion tracks
  with CUDA events);
* ``execution``    — the profiled solo execution time of the request's
  kernels (what a dedicated GPU would have spent);
* ``interference`` — measured on-device time beyond solo: the slowdown
  co-running kernels inflicted through the contention model.

The decomposition is exact by construction: execution intervals are
unioned on the timeline, hardware-queue intervals are unioned and
reduced by the execution set, ``queue`` is the remainder of the
request window, and ``interference`` is the residual of measured
on-device time over solo time.  ``queue + dispatch + execution +
interference == latency`` to float addition error (< 1e-9 s for any
simulated horizon this repo runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from . import tracer as ev
from .chrome_trace import collect_ops

__all__ = ["RequestAttribution", "attribute_requests", "attribution_report",
           "format_attribution_table"]

_ROUND = 9


@dataclass(frozen=True)
class RequestAttribution:
    """One request's latency decomposition (all seconds)."""

    client: str
    arrival: float
    start: float
    end: float
    queue: float
    dispatch: float
    execution: float
    interference: float
    ops: int

    @property
    def latency(self) -> float:
        return self.end - self.arrival

    def to_dict(self) -> dict:
        # Rounding the four components independently can push their sum
        # up to 2e-9 off the rounded latency; serialize queue as the
        # remainder instead, so the identity survives serialization.
        latency = round(self.latency, _ROUND)
        dispatch = round(self.dispatch, _ROUND)
        execution = round(self.execution, _ROUND)
        interference = round(self.interference, _ROUND)
        return {
            "client": self.client,
            "arrival": round(self.arrival, _ROUND),
            "end": round(self.end, _ROUND),
            "latency": latency,
            "queue": round(latency - dispatch - execution - interference,
                           _ROUND + 3),
            "dispatch": dispatch,
            "execution": execution,
            "interference": interference,
            "ops": self.ops,
        }


def _union_measure(intervals: List[Tuple[float, float]]) -> float:
    """Total measure of the union of (possibly overlapping) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_lo, cur_hi = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        elif hi > cur_hi:
            cur_hi = hi
    total += cur_hi - cur_lo
    return total


def _subtracted_measure(intervals: List[Tuple[float, float]],
                        cover: List[Tuple[float, float]]) -> float:
    """Measure of ``union(intervals) - union(cover)``."""
    if not intervals:
        return 0.0
    return _union_measure(intervals + cover) - _union_measure(list(cover))


def attribute_requests(tracer,
                       client: Optional[str] = None
                       ) -> List[RequestAttribution]:
    """Latency decomposition for every traced request (optionally one
    client's).  Requests whose ops were evicted from the ring buffer
    decompose with what survived — the sum identity still holds because
    ``queue`` absorbs the remainder."""
    events = list(tracer.iter_events())
    ops = collect_ops(events)
    by_client: Dict[str, list] = {}
    for rec in ops.values():
        if rec.client is not None and rec.submit is not None:
            by_client.setdefault(rec.client, []).append(rec)

    out: List[RequestAttribution] = []
    for event in events:
        if event[0] != ev.REQUEST:
            continue
        _, end, req_client, arrival, start = event
        name = req_client if req_client is not None else "(unattributed)"
        if client is not None and name != client:
            continue
        window_ops = [rec for rec in by_client.get(name, ())
                      if arrival - 1e-15 <= rec.submit <= end]
        exec_iv: List[Tuple[float, float]] = []
        hw_iv: List[Tuple[float, float]] = []
        solo = 0.0
        for rec in window_ops:
            if rec.dispatch is None or rec.complete is None:
                continue  # rejected/errored before the device saw it
            lo = max(rec.dispatch, arrival)
            hi = min(rec.complete, end)
            if hi > lo:
                exec_iv.append((lo, hi))
            if rec.is_kernel and rec.solo is not None:
                solo += rec.solo
            else:
                # Memory ops have no contention model behind them:
                # their solo time is their measured span.
                solo += max(0.0, hi - lo)
            sched = rec.schedule if rec.schedule is not None else rec.submit
            h_lo = max(sched, arrival)
            h_hi = min(rec.dispatch, end)
            if h_hi > h_lo:
                hw_iv.append((h_lo, h_hi))
        exec_measured = _union_measure(exec_iv)
        hw = _subtracted_measure(hw_iv, exec_iv)
        latency = end - arrival
        out.append(RequestAttribution(
            client=name,
            arrival=arrival,
            start=start,
            end=end,
            queue=latency - exec_measured - hw,
            dispatch=hw,
            execution=solo,
            interference=exec_measured - solo,
            ops=len(window_ops),
        ))
    return out


def attribution_report(tracer) -> dict:
    """Canonical per-client aggregation plus the per-request breakdown."""
    attrs = attribute_requests(tracer)
    clients: Dict[str, dict] = {}
    for a in attrs:
        agg = clients.setdefault(a.client, {
            "requests": 0, "latency": 0.0, "queue": 0.0, "dispatch": 0.0,
            "execution": 0.0, "interference": 0.0,
        })
        agg["requests"] += 1
        agg["latency"] += a.latency
        agg["queue"] += a.queue
        agg["dispatch"] += a.dispatch
        agg["execution"] += a.execution
        agg["interference"] += a.interference
    for agg in clients.values():
        for key in ("latency", "queue", "dispatch", "execution",
                    "interference"):
            agg[key] = round(agg[key], _ROUND)
    return {
        "clients": {name: clients[name] for name in sorted(clients)},
        "requests": [a.to_dict() for a in attrs],
    }


def format_attribution_table(tracer) -> str:
    """Human-readable per-client breakdown (totals in ms and percent)."""
    report = attribution_report(tracer)
    lines = [f"{'client':<12} {'reqs':>5} {'latency':>10} {'queue':>16} "
             f"{'hw queue':>16} {'execution':>16} {'interference':>16}"]

    def cell(part: float, total: float) -> str:
        pct = 100.0 * part / total if total > 0 else 0.0
        return f"{part*1e3:9.3f}ms {pct:4.0f}%"

    for name, agg in report["clients"].items():
        total = agg["latency"]
        lines.append(
            f"{name:<12} {agg['requests']:>5} {total*1e3:8.3f}ms "
            f"{cell(agg['queue'], total):>16} "
            f"{cell(agg['dispatch'], total):>16} "
            f"{cell(agg['execution'], total):>16} "
            f"{cell(agg['interference'], total):>16}")
    return "\n".join(lines)
