"""Low-overhead structured runtime tracer.

The tracer records the lifecycle of every intercepted GPU operation —
``submit → enqueue → schedule → dispatch → complete`` — plus instants
for scheduler decisions (best-effort admit/block reasons, SLO-guard
actuations, queue rejections, fault injections) and counter samples
(queue depths).  Events are fixed-shape tuples appended to a bounded
ring buffer; when the buffer fills, the oldest events are dropped and
counted, so a tracer can stay attached to an arbitrarily long run with
bounded memory.

Overhead discipline (the nil-tracer fast path):

* every instrumentation site guards with ``if tracer.enabled:`` — one
  attribute load on the hot path when tracing is off;
* the module-level :data:`NULL_TRACER` is the default everywhere; its
  ``enabled`` is ``False`` and its record methods are argument-free
  no-ops, so a disabled tracer allocates **no per-event objects** (the
  overhead benchmark asserts this with ``tracemalloc``);
* timestamps are simulated time — recording never reads a wall clock,
  so tracing cannot perturb determinism.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional, Tuple

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "TelemetryConfig"]

# Event kind tags (slot 0 of every event tuple).
SUBMIT = "submit"
ENQUEUE = "enqueue"
SCHEDULE = "schedule"
DISPATCH = "dispatch"
COMPLETE = "complete"
INSTANT = "instant"
COUNTER = "counter"
REQUEST = "request"
SPAN = "span"
SIM_EVENT = "sim"


class Tracer:
    """Ring-buffered structured event recorder (enabled).

    Events are plain tuples; their shapes (by kind tag):

    * ``(SUBMIT,   ts, client, seq, name, is_kernel)``
    * ``(ENQUEUE,  ts, client, seq, depth)``
    * ``(SCHEDULE, ts, client, seq)``
    * ``(DISPATCH, ts, client, seq, stream)``
    * ``(COMPLETE, ts, client, seq, stream, solo_duration, ok)``
    * ``(INSTANT,  ts, track, name, args)`` — args is a sorted tuple of
      (key, value) pairs
    * ``(COUNTER,  ts, track, name, value)``
    * ``(REQUEST,  ts_end, client, arrival, start)``
    * ``(SIM_EVENT, ts, label)``

    ``seq`` is the op's global sequence number — unique within a
    process but *not* stable across runs; exporters renumber by first
    appearance so serialized traces are run-to-run reproducible.
    """

    enabled = True

    def __init__(self, sim, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.events: Deque[tuple] = deque(maxlen=capacity)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def _append(self, event: tuple) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    # ------------------------------------------------------------------
    # Op lifecycle
    # ------------------------------------------------------------------
    def op_submit(self, client, seq, name, is_kernel) -> None:
        self._append((SUBMIT, self.sim.now, client, seq, name, is_kernel))

    def op_enqueue(self, client, seq, depth) -> None:
        self._append((ENQUEUE, self.sim.now, client, seq, depth))

    def op_schedule(self, client, seq) -> None:
        self._append((SCHEDULE, self.sim.now, client, seq))

    def op_dispatch(self, client, seq, stream) -> None:
        self._append((DISPATCH, self.sim.now, client, seq, stream))

    def op_complete(self, client, seq, stream, solo_duration, ok) -> None:
        self._append((COMPLETE, self.sim.now, client, seq, stream,
                      solo_duration, ok))

    # ------------------------------------------------------------------
    # Instants, counters, spans
    # ------------------------------------------------------------------
    def instant(self, track, name, **args) -> None:
        """Point event on a named track (scheduler decisions, guard
        actuations, faults).  ``args`` become the Chrome-trace args."""
        self._append((INSTANT, self.sim.now, track, name,
                      tuple(sorted(args.items()))))

    def counter(self, track, name, value) -> None:
        self._append((COUNTER, self.sim.now, track, name, value))

    def request(self, client, arrival, start) -> None:
        """One completed request/iteration: recorded at completion time
        with its arrival and service-start stamps."""
        self._append((REQUEST, self.sim.now, client, arrival, start))

    def span(self, track, name, start, end, **args) -> None:
        """One completed duration on a named track (e.g. a migration's
        cordon-to-uncordon window), recorded once at its end."""
        self._append((SPAN, self.sim.now, track, name, start, end,
                      tuple(sorted(args.items()))))

    def sim_event(self, label) -> None:
        """One executed calendar event (engine tracing; high volume)."""
        self._append((SIM_EVENT, self.sim.now, label))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def iter_events(self, kind: Optional[str] = None) -> Iterator[tuple]:
        if kind is None:
            return iter(self.events)
        return (e for e in self.events if e[0] == kind)


class NullTracer:
    """Disabled tracer: the default on every instrumented object.

    Hot paths never reach these methods (they guard on ``enabled``
    first), but each is a genuine no-op with explicit parameters — no
    ``*args`` packing — so even an unguarded call allocates nothing.
    """

    enabled = False
    events: Tuple = ()
    dropped = 0

    def __len__(self) -> int:
        return 0

    def op_submit(self, client, seq, name, is_kernel) -> None:
        return None

    def op_enqueue(self, client, seq, depth) -> None:
        return None

    def op_schedule(self, client, seq) -> None:
        return None

    def op_dispatch(self, client, seq, stream) -> None:
        return None

    def op_complete(self, client, seq, stream, solo_duration, ok) -> None:
        return None

    def instant(self, track, name, **args) -> None:
        return None

    def counter(self, track, name, value) -> None:
        return None

    def request(self, client, arrival, start) -> None:
        return None

    def span(self, track, name, start, end, **args) -> None:
        return None

    def sim_event(self, label) -> None:
        return None

    def iter_events(self, kind: Optional[str] = None) -> Iterator[tuple]:
        return iter(())


#: Shared disabled tracer; assigning it costs nothing and makes every
#: instrumentation site unconditionally safe.
NULL_TRACER = NullTracer()


@dataclass
class TelemetryConfig:
    """Switchboard for a run's telemetry.

    ``tracing`` turns the structured tracer on (off by default: the
    nil-tracer fast path).  ``capacity`` bounds the ring buffer.
    ``engine_events`` additionally records one event per executed
    simulator calendar entry — very high volume, for deep debugging
    only.
    """

    tracing: bool = False
    capacity: int = 1 << 16
    engine_events: bool = False

    def build_tracer(self, sim):
        """A :class:`Tracer` when tracing is on, else :data:`NULL_TRACER`."""
        if self.tracing:
            return Tracer(sim, capacity=self.capacity)
        return NULL_TRACER
