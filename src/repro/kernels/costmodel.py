"""Device roofline cost model.

Turns a static :class:`KernelSpec` (FLOPs, bytes, launch geometry) into
a dynamic :class:`KernelOp` for a concrete device: solo duration,
compute-throughput and memory-bandwidth utilization, SM footprint, and
roofline class.  This plays the role the real hardware plays in the
paper — it is where "ResNet50 on V100" becomes a concrete kernel trace.

The model is the classic roofline, with an occupancy factor:

    occupancy = clamp(total_threads / (num_sms * SATURATION_THREADS), ..)
    t_compute = flops / (peak_flops * compute_efficiency * occupancy)
    t_memory  = bytes / (mem_bandwidth * memory_efficiency)
    duration  = max(t_compute, t_memory) + fixed kernel overhead

The occupancy factor is what makes *small-batch inference underutilize
the GPU* in this simulator, the phenomenon §3 of the paper is built on:
a kernel with too few threads to fill the machine achieves only a
fraction of peak compute throughput, so its measured compute
utilization is low even while it runs.  Memory bandwidth is easier to
saturate from few SMs, so occupancy is not applied to the memory leg.

Utilizations follow from achieved rates over the realized duration, so
a compute-bound kernel shows high compute and low memory utilization,
exactly the signal Orion's profiler extracts with Nsight Compute.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .classify import classify_kernel
from .kernel import KernelOp, KernelSpec
from .launch import sm_needed

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.specs import DeviceSpec

__all__ = ["instantiate_kernel", "solo_duration", "occupancy_factor"]

# A kernel reaches full compute throughput once its grid supplies about
# one thread block per SM (each block carries enough ILP to keep the
# SM's pipelines fed).  Fewer blocks than SMs leave SMs idle — the
# small-batch underutilization of §3.
SATURATION_BLOCKS_PER_SM = 1.0
# Floor so pathological single-block launches still make progress.
MIN_OCCUPANCY = 0.05


def occupancy_factor(spec: KernelSpec, device: "DeviceSpec") -> float:
    """Fraction of peak compute rate reachable with this launch geometry."""
    saturation = device.num_sms * SATURATION_BLOCKS_PER_SM
    return min(1.0, max(MIN_OCCUPANCY, spec.launch.num_blocks / saturation))


def solo_duration(spec: KernelSpec, device: "DeviceSpec") -> float:
    """Solo execution time of ``spec`` on ``device`` in seconds."""
    occupancy = occupancy_factor(spec, device)
    t_compute = spec.flops / (device.peak_flops * spec.compute_efficiency * occupancy)
    t_memory = spec.bytes_moved / (device.memory_bandwidth * spec.memory_efficiency)
    return max(t_compute, t_memory, 0.0) + device.kernel_min_duration


def instantiate_kernel(
    spec: KernelSpec,
    device: "DeviceSpec",
    client_id: Optional[str] = None,
    tag: str = "",
) -> KernelOp:
    """Materialize one launch of ``spec`` on ``device``."""
    duration = solo_duration(spec, device)
    compute_util = min(1.0, spec.flops / duration / device.peak_flops)
    memory_util = min(1.0, spec.bytes_moved / duration / device.memory_bandwidth)
    sms = min(device.num_sms, sm_needed(spec.launch, device.sm_limits))
    profile = classify_kernel(
        compute_util,
        memory_util,
        roofline_available=duration >= device.roofline_min_duration,
    )
    return KernelOp(
        spec=spec,
        duration=duration,
        compute_util=compute_util,
        memory_util=memory_util,
        sm_needed=sms,
        profile=profile,
        client_id=client_id,
        tag=tag,
    )
