"""GPU kernel and memory-operation descriptors.

A :class:`KernelSpec` is the static description of a kernel the way the
profiler and scheduler see it: a stable identifier, its launch geometry,
and its arithmetic footprint (FLOPs and DRAM bytes).  A
:class:`KernelOp` is one dynamic launch of a spec by a client, carrying
the device-specific demands the contention model consumes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from .launch import LaunchConfig

__all__ = ["ResourceProfile", "KernelSpec", "KernelOp", "MemoryOp", "MemoryOpKind"]


class ResourceProfile(enum.Enum):
    """Roofline class of a kernel, as Orion's profiler reports it."""

    COMPUTE = "compute"
    MEMORY = "memory"
    UNKNOWN = "unknown"

    def opposite(self) -> "ResourceProfile":
        if self is ResourceProfile.COMPUTE:
            return ResourceProfile.MEMORY
        if self is ResourceProfile.MEMORY:
            return ResourceProfile.COMPUTE
        return ResourceProfile.UNKNOWN


@dataclass(frozen=True)
class KernelSpec:
    """Static description of a kernel (one per (layer op, shape))."""

    name: str
    flops: float
    bytes_moved: float
    launch: LaunchConfig
    # Efficiency factors: fraction of device peak this kernel can reach
    # on its bottleneck resource (tensor-core friendly GEMMs get high
    # compute efficiency; elementwise kernels stream near peak DRAM bw).
    compute_efficiency: float = 0.55
    memory_efficiency: float = 0.75

    def __post_init__(self):
        if self.flops < 0 or self.bytes_moved < 0:
            raise ValueError(f"kernel {self.name}: negative flops/bytes")
        if not (0 < self.compute_efficiency <= 1 and 0 < self.memory_efficiency <= 1):
            raise ValueError(f"kernel {self.name}: efficiencies must be in (0, 1]")

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte (infinite for byte-free kernels)."""
        if self.bytes_moved == 0:
            return float("inf")
        return self.flops / self.bytes_moved


_op_ids = itertools.count()


@dataclass
class KernelOp:
    """One dynamic launch of a kernel by a client.

    ``duration`` is the solo execution time on the target device;
    ``compute_util`` / ``memory_util`` are the fractions of device peak
    compute throughput / memory bandwidth the kernel consumes while
    running solo.  All three are filled in by the device cost model.
    """

    spec: KernelSpec
    duration: float
    compute_util: float
    memory_util: float
    sm_needed: int
    profile: ResourceProfile
    client_id: Optional[str] = None
    seq: int = field(default_factory=lambda: next(_op_ids))
    tag: str = ""

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError(f"kernel {self.spec.name}: non-positive duration")
        if not (0 <= self.compute_util <= 1 and 0 <= self.memory_util <= 1):
            raise ValueError(f"kernel {self.spec.name}: utilization out of [0,1]")
        if self.sm_needed < 1:
            raise ValueError(f"kernel {self.spec.name}: sm_needed must be >= 1")

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_kernel(self) -> bool:
        return True


class MemoryOpKind(enum.Enum):
    MALLOC = "cudaMalloc"
    FREE = "cudaFree"
    MEMSET = "cudaMemset"
    MEMCPY_H2D = "cudaMemcpyHostToDevice"
    MEMCPY_D2H = "cudaMemcpyDeviceToHost"
    MEMCPY_D2D = "cudaMemcpyDeviceToDevice"

    @property
    def is_transfer(self) -> bool:
        return self in (
            MemoryOpKind.MEMCPY_H2D,
            MemoryOpKind.MEMCPY_D2H,
            MemoryOpKind.MEMCPY_D2D,
        )

    @property
    def synchronizes_device(self) -> bool:
        """cudaMalloc / cudaFree synchronize the whole device (§5.1.3)."""
        return self in (MemoryOpKind.MALLOC, MemoryOpKind.FREE)


@dataclass
class MemoryOp:
    """A memory-management operation intercepted by the runtime."""

    kind: MemoryOpKind
    nbytes: int
    client_id: Optional[str] = None
    blocking: bool = True
    seq: int = field(default_factory=lambda: next(_op_ids))
    tag: str = ""

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError("memory op with negative size")

    @property
    def name(self) -> str:
        return self.kind.value

    @property
    def is_kernel(self) -> bool:
        return False
