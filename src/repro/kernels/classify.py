"""Kernel roofline classification (paper §5.2).

Orion classifies each kernel as compute-bound, memory-bound, or unknown:

1. If Nsight Compute provides a roofline analysis, use it (compute-bound
   when the kernel sits right of the ridge point, i.e. its compute time
   dominates its memory time).
2. Otherwise fall back to the 60% rule: compute-bound if compute
   throughput utilization > 60%, memory-bound if memory bandwidth
   utilization > 60%.
3. If neither holds, the kernel is ``UNKNOWN``.  The paper observes
   these are tiny (mostly optimizer-update kernels) and treats them as
   freely collocatable.

In the simulator, "roofline available" is modelled as "the kernel ran
long enough for the profiler to measure it" (see
``DeviceSpec.roofline_min_duration``); the tiny update-phase kernels
then land in ``UNKNOWN`` exactly as in the paper.
"""

from __future__ import annotations

from .kernel import ResourceProfile

__all__ = ["classify_kernel", "UTILIZATION_THRESHOLD"]

# The 60% fallback threshold recommended by Nsight Compute (paper §5.2).
UTILIZATION_THRESHOLD = 0.60


def classify_kernel(
    compute_util: float,
    memory_util: float,
    roofline_available: bool = True,
    threshold: float = UTILIZATION_THRESHOLD,
) -> ResourceProfile:
    """Classify a kernel from its solo utilizations."""
    if not (0 <= compute_util <= 1 and 0 <= memory_util <= 1):
        raise ValueError("utilizations must be in [0, 1]")
    if compute_util >= threshold or memory_util >= threshold:
        # The 60% rule applies whether or not a roofline exists.
        if compute_util >= memory_util:
            return ResourceProfile.COMPUTE
        return ResourceProfile.MEMORY
    if roofline_available:
        # Roofline analysis: the dominant solo resource decides.
        if compute_util >= memory_util:
            return ResourceProfile.COMPUTE
        return ResourceProfile.MEMORY
    return ResourceProfile.UNKNOWN
