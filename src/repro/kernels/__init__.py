"""Kernel descriptors, launch geometry, and the device roofline cost model."""

from .classify import UTILIZATION_THRESHOLD, classify_kernel
from .costmodel import instantiate_kernel, solo_duration
from .kernel import KernelOp, KernelSpec, MemoryOp, MemoryOpKind, ResourceProfile
from .launch import LaunchConfig, SmLimits, blocks_per_sm, sm_needed

__all__ = [
    "KernelSpec",
    "KernelOp",
    "MemoryOp",
    "MemoryOpKind",
    "ResourceProfile",
    "LaunchConfig",
    "SmLimits",
    "blocks_per_sm",
    "sm_needed",
    "classify_kernel",
    "UTILIZATION_THRESHOLD",
    "instantiate_kernel",
    "solo_duration",
]
