"""CUDA launch geometry and per-SM occupancy arithmetic.

Implements the paper's §5.2 occupancy calculation: the number of thread
blocks that fit on one SM is limited by threads, registers, and shared
memory, and ``sm_needed = ceil(num_blocks / blocks_per_sm)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LaunchConfig", "SmLimits", "blocks_per_sm", "sm_needed"]


@dataclass(frozen=True)
class SmLimits:
    """Per-SM hardware limits used in the occupancy calculation."""

    max_threads: int = 2048
    max_blocks: int = 32
    registers: int = 65536
    shared_memory: int = 98304  # bytes (96 KiB on Volta)

    def __post_init__(self):
        if min(self.max_threads, self.max_blocks, self.registers, self.shared_memory) <= 0:
            raise ValueError("SM limits must be positive")


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry and per-thread resource usage of one kernel."""

    num_blocks: int
    threads_per_block: int
    registers_per_thread: int = 32
    shared_mem_per_block: int = 0

    def __post_init__(self):
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if not (1 <= self.threads_per_block <= 1024):
            raise ValueError("threads_per_block must be in [1, 1024]")
        if self.registers_per_thread < 1:
            raise ValueError("registers_per_thread must be >= 1")
        if self.shared_mem_per_block < 0:
            raise ValueError("shared_mem_per_block must be >= 0")

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block


def blocks_per_sm(launch: LaunchConfig, limits: SmLimits = SmLimits()) -> int:
    """Blocks of this kernel that one SM can host concurrently (>= 1).

    Each limiting factor (thread slots, block slots, register file,
    shared memory) yields a bound; the minimum wins.  A kernel whose
    single block exceeds some per-SM limit still occupies one SM — the
    hardware serializes within the SM — so the result is clamped to 1.
    """
    by_threads = limits.max_threads // launch.threads_per_block
    by_blocks = limits.max_blocks
    regs_per_block = launch.registers_per_thread * launch.threads_per_block
    by_registers = limits.registers // max(regs_per_block, 1)
    if launch.shared_mem_per_block > 0:
        by_smem = limits.shared_memory // launch.shared_mem_per_block
    else:
        by_smem = limits.max_blocks
    return max(1, min(by_threads, by_blocks, by_registers, by_smem))


def sm_needed(launch: LaunchConfig, limits: SmLimits = SmLimits()) -> int:
    """SMs needed to host every block concurrently (paper §5.2)."""
    return max(1, math.ceil(launch.num_blocks / blocks_per_sm(launch, limits)))
