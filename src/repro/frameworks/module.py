"""Minimal DNN module system ("torchsim").

A :class:`Module` describes computation symbolically: calling
:meth:`Module.build` with an input shape produces the forward kernel
specs, the matching backward kernel specs, the parameter count, and the
output shape.  Containers compose.  This is the stand-in for
PyTorch's module tree — the scheduler only ever sees the kernel
sequences that lowering (see :mod:`repro.frameworks.lowering`) emits.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.kernels.kernel import KernelSpec

__all__ = ["Module", "Sequential", "Residual", "Built", "Namer"]

Shape = Tuple[int, ...]


class Namer:
    """Generates unique, stable kernel names within one model build."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._counts: dict = {}

    def name(self, op: str) -> str:
        index = self._counts.get(op, 0)
        self._counts[op] = index + 1
        return f"{self.prefix}/{op}_{index}"


@dataclass
class Built:
    """Result of building a module for a concrete input shape."""

    forward: List[KernelSpec] = field(default_factory=list)
    backward: List[KernelSpec] = field(default_factory=list)
    params: int = 0
    out_shape: Shape = ()

    def extend(self, other: "Built") -> None:
        self.forward.extend(other.forward)
        # Backward specs accumulate in forward order here; lowering
        # reverses the whole list once, which yields the standard
        # reverse-topological backward pass.
        self.backward.extend(other.backward)
        self.params += other.params
        self.out_shape = other.out_shape


class Module(abc.ABC):
    """Base class: every layer/container implements :meth:`build`."""

    @abc.abstractmethod
    def build(self, x: Shape, namer: Namer) -> Built:
        """Emit kernels for input shape ``x``; returns a :class:`Built`."""

    def out_shape(self, x: Shape) -> Shape:
        """Shape-only evaluation (no kernel emission)."""
        return self.build(x, Namer("shape-probe")).out_shape


class Sequential(Module):
    """Runs children in order."""

    def __init__(self, *children: Module):
        if not children:
            raise ValueError("Sequential needs at least one child")
        self.children: Sequence[Module] = children

    def build(self, x: Shape, namer: Namer) -> Built:
        result = Built(out_shape=x)
        shape = x
        for child in self.children:
            built = child.build(shape, namer)
            result.extend(built)
            shape = built.out_shape
        return result


class Residual(Module):
    """y = F(x) + x with an optional projection on the skip path.

    The elementwise add is a real kernel (it shows up in ResNet traces);
    shapes of the two branches must match after the optional projection.
    """

    def __init__(self, body: Module, projection: Module = None):
        self.body = body
        self.projection = projection

    def build(self, x: Shape, namer: Namer) -> Built:
        from .specbuild import elementwise_spec

        result = Built(out_shape=x)
        body_built = self.body.build(x, namer)
        result.extend(body_built)
        if self.projection is not None:
            proj_built = self.projection.build(x, namer)
            if proj_built.out_shape != body_built.out_shape:
                raise ValueError(
                    f"residual branch shapes differ: {proj_built.out_shape} "
                    f"vs {body_built.out_shape}"
                )
            result.extend(proj_built)
            result.out_shape = body_built.out_shape
        numel = 1
        for dim in body_built.out_shape:
            numel *= dim
        add = elementwise_spec(namer.name("residual_add"), numel, reads=2, writes=1)
        result.forward.append(add)
        result.backward.append(
            elementwise_spec(namer.name("residual_add_bwd"), numel, reads=1, writes=2)
        )
        result.out_shape = body_built.out_shape
        return result
