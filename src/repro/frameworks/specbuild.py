"""Kernel-spec builders shared by all layers.

Each builder turns an abstract amount of work (FLOPs, bytes, launch
shape heuristics) into a :class:`~repro.kernels.kernel.KernelSpec`.
The launch-geometry heuristics mirror how cuDNN/cuBLAS-style kernels
are actually shaped: GEMMs use 128x128 output tiles with heavy register
and shared-memory usage, elementwise kernels use wide thin grids, and
reductions sit in between.  Efficiency constants (fraction of device
peak the kernel family reaches) are the tunable part of the workload
model and are documented per family.
"""

from __future__ import annotations

import math

from repro.kernels.kernel import KernelSpec
from repro.kernels.launch import LaunchConfig

__all__ = [
    "gemm_spec",
    "conv2d_spec",
    "depthwise_conv2d_spec",
    "elementwise_spec",
    "reduction_spec",
    "softmax_spec",
    "FP32_BYTES",
]

FP32_BYTES = 4

# Fraction of peak each kernel family achieves on its bottleneck
# resource.  Dense GEMM/conv kernels reach a good fraction of peak
# FLOPs; normalization/elementwise kernels stream memory near peak but
# barely use the ALUs.
GEMM_COMPUTE_EFF = 0.72
GEMM_MEMORY_EFF = 0.80
CONV_COMPUTE_EFF = 0.60
DEPTHWISE_COMPUTE_EFF = 0.25
ELEMENTWISE_COMPUTE_EFF = 0.20
ELEMENTWISE_MEMORY_EFF = 0.85
REDUCTION_COMPUTE_EFF = 0.25
REDUCTION_MEMORY_EFF = 0.80


# (tile, registers/thread, shared memory/block) — bigger tiles amortize
# loads better but produce fewer blocks; the picker below mimics
# cuBLAS/cuDNN heuristics by shrinking tiles until the grid can fill a
# typical device (~128 blocks), falling back to split-K for small
# outputs with deep reductions.
_GEMM_TILES = ((128, 96, 48 * 1024), (64, 64, 16 * 1024), (32, 40, 8 * 1024))
_TARGET_BLOCKS = 128


def _gemm_launch(m: int, n: int, k: int) -> LaunchConfig:
    """Adaptive-tile GEMM grid."""
    blocks = 1
    regs, smem = _GEMM_TILES[-1][1:]
    for tile, tile_regs, tile_smem in _GEMM_TILES:
        blocks = max(1, math.ceil(m / tile) * math.ceil(n / tile))
        regs, smem = tile_regs, tile_smem
        if blocks >= _TARGET_BLOCKS:
            break
    if blocks < _TARGET_BLOCKS and k >= 512:
        split_k = min(8, max(1, _TARGET_BLOCKS // blocks))
        blocks *= split_k
    return LaunchConfig(
        num_blocks=blocks,
        threads_per_block=256,
        registers_per_thread=regs,
        shared_mem_per_block=smem,
    )


def _elementwise_launch(numel: int) -> LaunchConfig:
    """Grid-stride loop, 4 elements per thread."""
    blocks = max(1, math.ceil(numel / (256 * 4)))
    return LaunchConfig(
        num_blocks=blocks, threads_per_block=256, registers_per_thread=24
    )


def _reduction_launch(numel: int) -> LaunchConfig:
    blocks = max(1, math.ceil(numel / (512 * 8)))
    return LaunchConfig(
        num_blocks=blocks,
        threads_per_block=512,
        registers_per_thread=32,
        shared_mem_per_block=4 * 1024,
    )


def gemm_spec(name: str, m: int, n: int, k: int, batch: int = 1) -> KernelSpec:
    """(Batched) dense matrix multiply: C[m,n] += A[m,k] @ B[k,n]."""
    if min(m, n, k, batch) < 1:
        raise ValueError(f"gemm {name}: dimensions must be >= 1")
    flops = 2.0 * m * n * k * batch
    bytes_moved = FP32_BYTES * batch * (m * k + k * n + m * n)
    return KernelSpec(
        name=name,
        flops=flops,
        bytes_moved=bytes_moved,
        launch=_gemm_launch(m * batch, n, k),
        compute_efficiency=GEMM_COMPUTE_EFF,
        memory_efficiency=GEMM_MEMORY_EFF,
    )


def conv2d_spec(
    name: str,
    batch: int,
    c_in: int,
    c_out: int,
    h_out: int,
    w_out: int,
    kernel_size: int,
) -> KernelSpec:
    """Implicit-GEMM convolution: M = N*H*W, N = C_out, K = C_in*k*k."""
    m = batch * h_out * w_out
    n = c_out
    k = c_in * kernel_size * kernel_size
    flops = 2.0 * m * n * k
    # Activations in + out + filter weights.
    bytes_moved = FP32_BYTES * (
        batch * c_in * h_out * w_out + batch * c_out * h_out * w_out + n * k
    )
    return KernelSpec(
        name=name,
        flops=flops,
        bytes_moved=bytes_moved,
        launch=_gemm_launch(m, n, k),
        compute_efficiency=CONV_COMPUTE_EFF,
        memory_efficiency=GEMM_MEMORY_EFF,
    )


def depthwise_conv2d_spec(
    name: str, batch: int, channels: int, h_out: int, w_out: int, kernel_size: int
) -> KernelSpec:
    """Depthwise convolution — low arithmetic intensity, memory bound."""
    numel_out = batch * channels * h_out * w_out
    flops = 2.0 * numel_out * kernel_size * kernel_size
    bytes_moved = FP32_BYTES * (2 * numel_out + channels * kernel_size * kernel_size)
    return KernelSpec(
        name=name,
        flops=flops,
        bytes_moved=bytes_moved,
        launch=_elementwise_launch(numel_out),
        compute_efficiency=DEPTHWISE_COMPUTE_EFF,
        memory_efficiency=0.70,
    )


def elementwise_spec(
    name: str, numel: int, reads: int = 1, writes: int = 1, flops_per_element: float = 1.0
) -> KernelSpec:
    """Pointwise op (ReLU, add, bias, dropout, optimizer update...)."""
    if numel < 1:
        raise ValueError(f"elementwise {name}: numel must be >= 1")
    return KernelSpec(
        name=name,
        flops=flops_per_element * numel,
        bytes_moved=FP32_BYTES * numel * (reads + writes),
        launch=_elementwise_launch(numel),
        compute_efficiency=ELEMENTWISE_COMPUTE_EFF,
        memory_efficiency=ELEMENTWISE_MEMORY_EFF,
    )


def reduction_spec(
    name: str, numel: int, passes: float = 2.0, flops_per_element: float = 2.0
) -> KernelSpec:
    """Normalization-style kernel (mean/var + normalize): BN, LN, pooling."""
    return KernelSpec(
        name=name,
        flops=flops_per_element * numel,
        bytes_moved=FP32_BYTES * numel * passes,
        launch=_reduction_launch(numel),
        compute_efficiency=REDUCTION_COMPUTE_EFF,
        memory_efficiency=REDUCTION_MEMORY_EFF,
    )


def softmax_spec(name: str, numel: int) -> KernelSpec:
    """Row softmax: exp + sum + divide, ~3 passes over the data."""
    return reduction_spec(name, numel, passes=3.0, flops_per_element=5.0)
