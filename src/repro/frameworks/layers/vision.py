"""Vision layers: convolutions, batch norm, activations, pooling, linear.

Shapes are NCHW tuples.  Backward kernels follow the standard autograd
decomposition: a convolution's backward is a data-gradient plus a
weight-gradient kernel (each roughly the cost of the forward), an
elementwise op's backward is one elementwise kernel, a batch norm's
backward is one reduction-style kernel.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..module import Built, Module, Namer, Shape
from ..specbuild import (
    conv2d_spec,
    depthwise_conv2d_spec,
    elementwise_spec,
    gemm_spec,
    reduction_spec,
)

__all__ = [
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Linear",
]


def _check_nchw(shape: Shape, who: str) -> Tuple[int, int, int, int]:
    if len(shape) != 4:
        raise ValueError(f"{who} expects NCHW input, got shape {shape}")
    return shape  # type: ignore[return-value]


class Conv2d(Module):
    """Standard 2D convolution (implicit GEMM)."""

    def __init__(self, c_in: int, c_out: int, kernel_size: int, stride: int = 1,
                 padding: int = 0):
        if min(c_in, c_out, kernel_size, stride) < 1:
            raise ValueError("Conv2d arguments must be >= 1")
        self.c_in = c_in
        self.c_out = c_out
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def _out_hw(self, h: int, w: int) -> Tuple[int, int]:
        h_out = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        w_out = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        if h_out < 1 or w_out < 1:
            raise ValueError(f"Conv2d output collapsed: {h}x{w} -> {h_out}x{w_out}")
        return h_out, w_out

    def build(self, x: Shape, namer: Namer) -> Built:
        n, c, h, w = _check_nchw(x, "Conv2d")
        if c != self.c_in:
            raise ValueError(f"Conv2d expected {self.c_in} channels, got {c}")
        h_out, w_out = self._out_hw(h, w)
        fwd = conv2d_spec(
            namer.name("conv2d"), n, self.c_in, self.c_out, h_out, w_out,
            self.kernel_size,
        )
        # Backward: data gradient + weight gradient, each ~forward cost.
        dgrad = conv2d_spec(
            namer.name("conv2d_dgrad"), n, self.c_out, self.c_in, h, w,
            self.kernel_size,
        )
        wgrad = conv2d_spec(
            namer.name("conv2d_wgrad"), n, self.c_in, self.c_out, h_out, w_out,
            self.kernel_size,
        )
        params = self.c_in * self.c_out * self.kernel_size**2
        return Built([fwd], [dgrad, wgrad], params, (n, self.c_out, h_out, w_out))


class DepthwiseConv2d(Module):
    """Depthwise convolution (MobileNet building block, memory bound)."""

    def __init__(self, channels: int, kernel_size: int, stride: int = 1,
                 padding: int = 0):
        if min(channels, kernel_size, stride) < 1:
            raise ValueError("DepthwiseConv2d arguments must be >= 1")
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def build(self, x: Shape, namer: Namer) -> Built:
        n, c, h, w = _check_nchw(x, "DepthwiseConv2d")
        if c != self.channels:
            raise ValueError(f"DepthwiseConv2d expected {self.channels} channels, got {c}")
        h_out = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        w_out = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        fwd = depthwise_conv2d_spec(
            namer.name("dwconv2d"), n, c, h_out, w_out, self.kernel_size
        )
        dgrad = depthwise_conv2d_spec(
            namer.name("dwconv2d_dgrad"), n, c, h, w, self.kernel_size
        )
        wgrad = depthwise_conv2d_spec(
            namer.name("dwconv2d_wgrad"), n, c, h_out, w_out, self.kernel_size
        )
        params = c * self.kernel_size**2
        return Built([fwd], [dgrad, wgrad], params, (n, c, h_out, w_out))


class BatchNorm2d(Module):
    """2D batch normalization — the paper's canonical memory-bound kernel."""

    def __init__(self, channels: int):
        self.channels = channels

    def build(self, x: Shape, namer: Namer) -> Built:
        n, c, h, w = _check_nchw(x, "BatchNorm2d")
        if c != self.channels:
            raise ValueError(f"BatchNorm2d expected {self.channels} channels, got {c}")
        numel = n * c * h * w
        fwd = reduction_spec(namer.name("batchnorm2d"), numel, passes=2.5)
        bwd = reduction_spec(namer.name("batchnorm2d_bwd"), numel, passes=3.0)
        return Built([fwd], [bwd], 2 * c, x)


class ReLU(Module):
    """Pointwise activation (also used for ReLU6 — identical cost)."""

    def build(self, x: Shape, namer: Namer) -> Built:
        numel = math.prod(x)
        fwd = elementwise_spec(namer.name("relu"), numel)
        bwd = elementwise_spec(namer.name("relu_bwd"), numel, reads=2, writes=1)
        return Built([fwd], [bwd], 0, x)


class MaxPool2d(Module):
    """Max pooling."""

    def __init__(self, kernel_size: int, stride: int, padding: int = 0):
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def build(self, x: Shape, namer: Namer) -> Built:
        n, c, h, w = _check_nchw(x, "MaxPool2d")
        h_out = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        w_out = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        numel = n * c * h * w
        fwd = reduction_spec(namer.name("maxpool2d"), numel, passes=1.5,
                             flops_per_element=1.0)
        bwd = elementwise_spec(namer.name("maxpool2d_bwd"), numel)
        return Built([fwd], [bwd], 0, (n, c, h_out, w_out))


class GlobalAvgPool2d(Module):
    """Adaptive average pool to 1x1."""

    def build(self, x: Shape, namer: Namer) -> Built:
        n, c, h, w = _check_nchw(x, "GlobalAvgPool2d")
        numel = n * c * h * w
        fwd = reduction_spec(namer.name("avgpool2d"), numel, passes=1.2,
                             flops_per_element=1.0)
        bwd = elementwise_spec(namer.name("avgpool2d_bwd"), numel)
        return Built([fwd], [bwd], 0, (n, c, 1, 1))


class Flatten(Module):
    """Shape-only reshape: emits no kernels."""

    def build(self, x: Shape, namer: Namer) -> Built:
        if len(x) < 2:
            raise ValueError(f"Flatten expects >= 2 dims, got {x}")
        return Built([], [], 0, (x[0], math.prod(x[1:])))


class Linear(Module):
    """Fully connected layer (GEMM)."""

    def __init__(self, in_features: int, out_features: int):
        if min(in_features, out_features) < 1:
            raise ValueError("Linear features must be >= 1")
        self.in_features = in_features
        self.out_features = out_features

    def build(self, x: Shape, namer: Namer) -> Built:
        if x[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dim {self.in_features}, got {x[-1]} ({x})"
            )
        rows = math.prod(x[:-1])
        fwd = gemm_spec(namer.name("linear"), rows, self.out_features,
                        self.in_features)
        # Backward: dX = dY @ W^T, dW = X^T @ dY.
        dgrad = gemm_spec(namer.name("linear_dgrad"), rows, self.in_features,
                          self.out_features)
        wgrad = gemm_spec(namer.name("linear_wgrad"), self.in_features,
                          self.out_features, rows)
        params = self.in_features * self.out_features + self.out_features
        return Built([fwd], [dgrad, wgrad], params, x[:-1] + (self.out_features,))


def conv_bn_relu(c_in: int, c_out: int, kernel_size: int, stride: int = 1,
                 padding: int = 0):
    """Convenience: the Conv-BN-ReLU triple that dominates vision models."""
    from ..module import Sequential

    return Sequential(
        Conv2d(c_in, c_out, kernel_size, stride, padding),
        BatchNorm2d(c_out),
        ReLU(),
    )
