"""Transformer-family layers: layer norm, GELU, attention, FFN, embeddings.

Sequence inputs use (batch, seq_len, hidden) shapes.  Attention is
decomposed into the kernels a real framework launches: QKV projection
GEMMs, the score GEMM, softmax, the context GEMM, and the output
projection — so an attention block contributes the same kind of
mixed compute/memory kernel trace that the paper's NLP workloads show.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..module import Built, Module, Namer, Shape
from ..specbuild import elementwise_spec, gemm_spec, reduction_spec, softmax_spec

__all__ = [
    "LayerNorm",
    "Gelu",
    "Embedding",
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerEncoderLayer",
]


def _check_seq(shape: Shape, who: str) -> Tuple[int, int, int]:
    if len(shape) != 3:
        raise ValueError(f"{who} expects (batch, seq, hidden) input, got {shape}")
    return shape  # type: ignore[return-value]


class LayerNorm(Module):
    """Layer normalization — memory bound."""

    def __init__(self, hidden: int):
        self.hidden = hidden

    def build(self, x: Shape, namer: Namer) -> Built:
        numel = math.prod(x)
        fwd = reduction_spec(namer.name("layernorm"), numel, passes=2.5)
        bwd = reduction_spec(namer.name("layernorm_bwd"), numel, passes=3.0)
        return Built([fwd], [bwd], 2 * self.hidden, x)


class Gelu(Module):
    """GELU activation — pointwise with a few extra FLOPs."""

    def build(self, x: Shape, namer: Namer) -> Built:
        numel = math.prod(x)
        fwd = elementwise_spec(namer.name("gelu"), numel, flops_per_element=8.0)
        bwd = elementwise_spec(namer.name("gelu_bwd"), numel, reads=2, writes=1,
                               flops_per_element=10.0)
        return Built([fwd], [bwd], 0, x)


class Embedding(Module):
    """Token + position embedding lookup — a gather, memory bound."""

    def __init__(self, vocab: int, hidden: int):
        self.vocab = vocab
        self.hidden = hidden

    def build(self, x: Shape, namer: Namer) -> Built:
        if len(x) != 2:
            raise ValueError(f"Embedding expects (batch, seq) token input, got {x}")
        batch, seq = x
        numel = batch * seq * self.hidden
        fwd = elementwise_spec(namer.name("embedding"), numel, reads=1, writes=1,
                               flops_per_element=0.0)
        bwd = elementwise_spec(namer.name("embedding_bwd"), numel, reads=1, writes=1,
                               flops_per_element=1.0)
        return Built([fwd], [bwd], self.vocab * self.hidden, (batch, seq, self.hidden))


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention, lowered to its GEMM/softmax kernels."""

    def __init__(self, hidden: int, heads: int):
        if hidden % heads != 0:
            raise ValueError(f"hidden {hidden} not divisible by heads {heads}")
        self.hidden = hidden
        self.heads = heads

    def build(self, x: Shape, namer: Namer) -> Built:
        batch, seq, hidden = _check_seq(x, "MultiHeadSelfAttention")
        if hidden != self.hidden:
            raise ValueError(f"attention expected hidden {self.hidden}, got {hidden}")
        head_dim = hidden // self.heads
        fwd = []
        bwd = []
        # QKV projection: one fused GEMM hidden -> 3*hidden.
        fwd.append(gemm_spec(namer.name("attn_qkv"), batch * seq, 3 * hidden, hidden))
        bwd.append(gemm_spec(namer.name("attn_qkv_dgrad"), batch * seq, hidden, 3 * hidden))
        bwd.append(gemm_spec(namer.name("attn_qkv_wgrad"), hidden, 3 * hidden, batch * seq))
        # Scores: (seq x head_dim) @ (head_dim x seq) per head per batch.
        fwd.append(gemm_spec(namer.name("attn_scores"), seq, seq, head_dim,
                             batch=batch * self.heads))
        bwd.append(gemm_spec(namer.name("attn_scores_bwd"), seq, head_dim, seq,
                             batch=2 * batch * self.heads))
        # Softmax over seq x seq score matrices.
        fwd.append(softmax_spec(namer.name("attn_softmax"),
                                batch * self.heads * seq * seq))
        bwd.append(softmax_spec(namer.name("attn_softmax_bwd"),
                                batch * self.heads * seq * seq))
        # Context: scores @ V.
        fwd.append(gemm_spec(namer.name("attn_context"), seq, head_dim, seq,
                             batch=batch * self.heads))
        bwd.append(gemm_spec(namer.name("attn_context_bwd"), seq, seq, head_dim,
                             batch=2 * batch * self.heads))
        # Output projection.
        fwd.append(gemm_spec(namer.name("attn_out"), batch * seq, hidden, hidden))
        bwd.append(gemm_spec(namer.name("attn_out_dgrad"), batch * seq, hidden, hidden))
        bwd.append(gemm_spec(namer.name("attn_out_wgrad"), hidden, hidden, batch * seq))
        params = 4 * hidden * hidden + 4 * hidden
        return Built(fwd, bwd, params, x)


class FeedForward(Module):
    """Transformer FFN: Linear(hidden->ffn) + GELU + Linear(ffn->hidden)."""

    def __init__(self, hidden: int, ffn: int):
        self.hidden = hidden
        self.ffn = ffn

    def build(self, x: Shape, namer: Namer) -> Built:
        batch, seq, hidden = _check_seq(x, "FeedForward")
        rows = batch * seq
        result = Built(out_shape=x)
        result.forward.append(gemm_spec(namer.name("ffn_in"), rows, self.ffn, hidden))
        result.backward.append(gemm_spec(namer.name("ffn_in_dgrad"), rows, hidden, self.ffn))
        result.backward.append(gemm_spec(namer.name("ffn_in_wgrad"), hidden, self.ffn, rows))
        gelu = Gelu().build((batch, seq, self.ffn), namer)
        result.forward.extend(gelu.forward)
        result.backward.extend(gelu.backward)
        result.forward.append(gemm_spec(namer.name("ffn_out"), rows, hidden, self.ffn))
        result.backward.append(gemm_spec(namer.name("ffn_out_dgrad"), rows, self.ffn, hidden))
        result.backward.append(gemm_spec(namer.name("ffn_out_wgrad"), self.ffn, hidden, rows))
        result.params = 2 * hidden * self.ffn + hidden + self.ffn
        return result


class TransformerEncoderLayer(Module):
    """Pre-norm encoder block: LN + MHSA + residual add, LN + FFN + residual."""

    def __init__(self, hidden: int, heads: int, ffn: int):
        self.hidden = hidden
        self.attn = MultiHeadSelfAttention(hidden, heads)
        self.ffn = FeedForward(hidden, ffn)
        self.ln1 = LayerNorm(hidden)
        self.ln2 = LayerNorm(hidden)

    def build(self, x: Shape, namer: Namer) -> Built:
        batch, seq, hidden = _check_seq(x, "TransformerEncoderLayer")
        result = Built(out_shape=x)
        for module in (self.ln1, self.attn):
            result.extend(module.build(x, namer))
        numel = batch * seq * hidden
        result.forward.append(
            elementwise_spec(namer.name("attn_residual"), numel, reads=2, writes=1)
        )
        result.backward.append(
            elementwise_spec(namer.name("attn_residual_bwd"), numel, reads=1, writes=2)
        )
        for module in (self.ln2, self.ffn):
            result.extend(module.build(x, namer))
        result.forward.append(
            elementwise_spec(namer.name("ffn_residual"), numel, reads=2, writes=1)
        )
        result.backward.append(
            elementwise_spec(namer.name("ffn_residual_bwd"), numel, reads=1, writes=2)
        )
        result.out_shape = x
        return result
