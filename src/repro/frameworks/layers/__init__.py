"""Layer catalog for the torchsim mini-framework."""

from .nlp import (
    Embedding,
    FeedForward,
    Gelu,
    LayerNorm,
    MultiHeadSelfAttention,
    TransformerEncoderLayer,
)
from .vision import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    conv_bn_relu,
)

__all__ = [
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Linear",
    "conv_bn_relu",
    "LayerNorm",
    "Gelu",
    "Embedding",
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerEncoderLayer",
]
