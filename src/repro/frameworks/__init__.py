"""Mini DNN framework ("torchsim"): modules, layers, lowering to kernel plans."""

from .lowering import OpPlan, PlannedOp, instantiate_plan, lower_inference, lower_training
from .module import Built, Module, Namer, Residual, Sequential

__all__ = [
    "Module",
    "Sequential",
    "Residual",
    "Built",
    "Namer",
    "OpPlan",
    "PlannedOp",
    "lower_inference",
    "lower_training",
    "instantiate_plan",
]
