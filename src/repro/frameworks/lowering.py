"""Lowering: module trees -> executable op plans.

An :class:`OpPlan` is the ordered sequence of operations one request
(inference) or one iteration (training) launches, each entry carrying a
phase tag ("copy", "forward", "backward", "update", "output").  The
plan is device-independent; :func:`instantiate_plan` binds it to a
device, producing the concrete :class:`~repro.kernels.kernel.KernelOp`
and :class:`~repro.kernels.kernel.MemoryOp` objects a client launches.

Training plans append the optimizer update phase: one fused update
kernel per ~4M parameters (Adam reads parameter/gradient/moments and
writes parameter/moments — short, memory-leaning kernels that land in
the profiler's "unknown" class, matching the paper's §5.2 observation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.kernels.costmodel import instantiate_kernel
from repro.kernels.kernel import KernelOp, KernelSpec, MemoryOp, MemoryOpKind

from .module import Module, Namer
from .specbuild import FP32_BYTES, elementwise_spec

__all__ = ["PlannedOp", "OpPlan", "lower_inference", "lower_training", "instantiate_plan"]

# Parameters per fused optimizer-update kernel launch.
UPDATE_CHUNK = 1_000_000
# Adam: read p, g, m, v; write p, m, v  ->  7 fp32 accesses per param.
ADAM_ACCESSES = 7
ADAM_FLOPS_PER_PARAM = 12.0


@dataclass(frozen=True)
class PlannedOp:
    """One op of a plan: a kernel spec or a host<->device copy."""

    phase: str
    spec: Optional[KernelSpec] = None
    copy_bytes: int = 0
    copy_kind: Optional[MemoryOpKind] = None

    @property
    def is_copy(self) -> bool:
        return self.copy_kind is not None


@dataclass
class OpPlan:
    """Ordered op sequence for one request/iteration of a workload."""

    model_name: str
    kind: str  # "inference" | "training"
    batch_size: int
    ops: List[PlannedOp]
    params: int
    input_bytes: int
    # Resident GPU state: weights (+ gradients and optimizer moments for
    # training) plus a coarse activation-footprint estimate.
    state_bytes: int = 0

    @property
    def kernel_count(self) -> int:
        return sum(1 for op in self.ops if not op.is_copy)

    def kernel_specs(self) -> List[KernelSpec]:
        return [op.spec for op in self.ops if op.spec is not None]


def _input_bytes(input_shape) -> int:
    return FP32_BYTES * math.prod(input_shape)


def lower_inference(model: Module, input_shape, model_name: str) -> OpPlan:
    """One inference request: H2D input, forward kernels, D2H output."""
    built = model.build(tuple(input_shape), Namer(model_name))
    ops: List[PlannedOp] = [
        PlannedOp("copy", copy_bytes=_input_bytes(input_shape),
                  copy_kind=MemoryOpKind.MEMCPY_H2D)
    ]
    ops.extend(PlannedOp("forward", spec=s) for s in built.forward)
    out_bytes = FP32_BYTES * math.prod(built.out_shape)
    ops.append(PlannedOp("output", copy_bytes=out_bytes,
                         copy_kind=MemoryOpKind.MEMCPY_D2H))
    activations = int(sum(s.bytes_moved for s in built.forward) / 3)
    state_bytes = FP32_BYTES * built.params + activations // 4 + _input_bytes(input_shape)
    return OpPlan(model_name, "inference", input_shape[0], ops, built.params,
                  _input_bytes(input_shape), state_bytes)


def lower_training(model: Module, input_shape, model_name: str) -> OpPlan:
    """One training iteration: H2D batch, forward, loss, backward, update."""
    built = model.build(tuple(input_shape), Namer(model_name))
    namer = Namer(model_name)
    ops: List[PlannedOp] = [
        PlannedOp("copy", copy_bytes=_input_bytes(input_shape),
                  copy_kind=MemoryOpKind.MEMCPY_H2D)
    ]
    ops.extend(PlannedOp("forward", spec=s) for s in built.forward)
    # Loss + initial gradient: small elementwise kernels over the output.
    out_numel = max(1, math.prod(built.out_shape))
    ops.append(PlannedOp("backward",
                         spec=elementwise_spec(namer.name("loss"), out_numel,
                                               reads=2, writes=1,
                                               flops_per_element=4.0)))
    # Backward kernels run in reverse layer order.
    ops.extend(PlannedOp("backward", spec=s) for s in reversed(built.backward))
    # Optimizer update: fused Adam kernels over parameter chunks.
    remaining = built.params
    while remaining > 0:
        chunk = min(remaining, UPDATE_CHUNK)
        spec = KernelSpec(
            name=namer.name("adam_update"),
            flops=ADAM_FLOPS_PER_PARAM * chunk,
            bytes_moved=FP32_BYTES * ADAM_ACCESSES * chunk,
            launch=elementwise_spec("probe", max(chunk, 1)).launch,
            compute_efficiency=0.20,
            memory_efficiency=0.85,
        )
        ops.append(PlannedOp("update", spec=spec))
        remaining -= chunk
    activations = int(sum(s.bytes_moved for s in built.forward) / 3)
    state_bytes = 4 * FP32_BYTES * built.params + activations + _input_bytes(input_shape)
    return OpPlan(model_name, "training", input_shape[0], ops, built.params,
                  _input_bytes(input_shape), state_bytes)


def instantiate_plan(plan: OpPlan, device, client_id: Optional[str] = None,
                     async_copies: bool = False) -> List[Union[KernelOp, MemoryOp]]:
    """Bind a plan to a device: concrete ops ready to launch.

    Each call creates fresh op objects (they carry per-launch identity),
    so a client calls this once per request/iteration.
    """
    result: List[Union[KernelOp, MemoryOp]] = []
    for planned in plan.ops:
        if planned.is_copy:
            result.append(
                MemoryOp(kind=planned.copy_kind, nbytes=planned.copy_bytes,
                         client_id=client_id, blocking=not async_copies,
                         tag=planned.phase)
            )
        else:
            result.append(
                instantiate_kernel(planned.spec, device, client_id=client_id,
                                   tag=planned.phase)
            )
    return result
